"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic backbone the controllers rely on:

* the steady-state field responds monotonically to power, fan level and
  TEC activation;
* Eq. (5) interpolation stays within the [T_prev, T_steady] envelope;
* Eq. (7)/(11) ratio algebra composes;
* the energy-balance identity holds for arbitrary inputs;
* ActuatorState key/equality semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.power.dvfs import SCC_DVFS
from repro.power.leakage import LinearLeakage

SYSTEM = build_system(rows=1, cols=2)
N_COMP = SYSTEM.nodes.n_components
N_DEV = SYSTEM.n_tec_devices

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

power_vectors = arrays(
    float,
    N_COMP,
    elements=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)
tec_vectors = arrays(
    float,
    N_DEV,
    elements=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)


@slow
@given(p=power_vectors)
def test_steady_state_above_ambient(p):
    t = SYSTEM.solver.solve(p, 1, np.zeros(N_DEV))
    assert np.all(t >= SYSTEM.package.ambient_k - 1e-9)


@slow
@given(p=power_vectors, extra=power_vectors)
def test_steady_state_monotone_in_power(p, extra):
    """Adding power anywhere cannot cool anything (TECs off: G is an
    M-matrix, its inverse is nonnegative)."""
    t0 = SYSTEM.solver.solve(p, 1, np.zeros(N_DEV))
    t1 = SYSTEM.solver.solve(p + extra, 1, np.zeros(N_DEV))
    assert np.all(t1 >= t0 - 1e-9)


@slow
@given(p=power_vectors, lv=st.integers(1, 5))
def test_slower_fan_never_cools(p, lv):
    t_fast = SYSTEM.solver.solve(p, lv, np.zeros(N_DEV))
    t_slow = SYSTEM.solver.solve(p, lv + 1, np.zeros(N_DEV))
    comp = SYSTEM.nodes.component_slice
    assert t_slow[comp].max() >= t_fast[comp].max() - 1e-9


@slow
@given(p=power_vectors, tec=tec_vectors)
def test_energy_balance_any_configuration(p, tec):
    """Ambient outflow == component power + TEC electrical power."""
    nd = SYSTEM.nodes
    t = SYSTEM.solver.solve(p, 2, tec)
    g_conv = SYSTEM.fan.convection_conductance_w_per_k(2)
    out = float(
        ((g_conv / nd.n_tiles) * (t[nd.sink_slice] - SYSTEM.package.ambient_k)).sum()
    )
    p_tec = SYSTEM.tec_power_w(tec, t)
    # abs floor covers the LU residual at (near-)zero power, where the
    # relative tolerance has nothing to scale against: the solve leaves
    # ~1e-9 K of noise on conductances of hundreds of W/K, i.e. a few
    # microwatts of apparent flow.
    assert out == pytest.approx(float(p.sum()) + p_tec, rel=1e-6, abs=1e-5)


@slow
@given(
    p=power_vectors,
    dt=st.floats(1e-4, 10.0, allow_nan=False),
)
def test_transient_envelope(p, dt):
    """Eq. (5) output lies between the previous field and steady state."""
    t0 = SYSTEM.uniform_initial_temps_k() + 5.0
    ts = SYSTEM.solver.solve(p, 1, np.zeros(N_DEV))
    t1 = SYSTEM.transient.step(t0, ts, dt, 1, np.zeros(N_DEV))
    lo = np.minimum(t0, ts) - 1e-9
    hi = np.maximum(t0, ts) + 1e-9
    assert np.all(t1 >= lo) and np.all(t1 <= hi)


@given(
    a=st.integers(0, 5),
    b=st.integers(0, 5),
    c=st.integers(0, 5),
)
def test_dvfs_ratio_composition(a, b, c):
    """Eq. (7) ratios compose: r(a->b) r(b->c) = r(a->c)."""
    r = SCC_DVFS.dynamic_ratio
    assert r(a, b) * r(b, c) == pytest.approx(r(a, c))
    f = SCC_DVFS.frequency_ratio
    assert f(a, b) * f(b, c) == pytest.approx(f(a, c))


@given(
    t=arrays(
        float,
        4,
        elements=st.floats(250.0, 420.0, allow_nan=False),
    )
)
def test_linear_leakage_monotone_and_additive(t):
    lk = LinearLeakage(
        p_tdp_leak_w=30.0,
        alpha_w_per_k=0.45,
        t_tdp_c=90.0,
        areas_mm2=np.array([1.0, 2.0, 3.0, 4.0]),
    )
    base = lk.per_component_w(t)
    hotter = lk.per_component_w(t + 5.0)
    assert np.all(hotter >= base)
    assert np.all(base >= 0.0)


@given(
    fan=st.integers(1, 6),
    dev=st.integers(0, N_DEV - 1),
    val=st.floats(0.0, 1.0, allow_nan=False),
)
def test_actuator_state_key_roundtrip(fan, dev, val):
    s = ActuatorState.initial(N_DEV, 2, 5, fan).with_tec(dev, val)
    s2 = ActuatorState.initial(N_DEV, 2, 5, fan).with_tec(dev, val)
    assert s.key() == s2.key()


@given(
    peak=st.floats(1.0, 149.0, allow_nan=False),
    th=st.floats(40.0, 120.0, allow_nan=False),
)
def test_problem_constraint_consistency(peak, th):
    p = EnergyProblem(t_threshold_c=th)
    if p.violated(peak):
        assert not p.satisfied(peak)
    assert p.headroom_c(peak) == pytest.approx(th - peak)


@given(
    power=st.floats(0.0, 1e4, allow_nan=False),
    ips=st.floats(1.0, 1e12, allow_nan=False),
)
def test_epi_positive_and_scales(power, ips):
    epi = EnergyProblem.epi(power, ips)
    assert epi >= 0.0
    assert EnergyProblem.epi(2 * power, ips) == pytest.approx(2 * epi)
