"""Batched evaluation must be *bit-identical* to the sequential path.

The batched candidate pipeline (``solve_many`` / ``predict_many`` /
``evaluate_many``) exists purely as a performance optimization: SuperLU
back-substitutes multi-RHS columns independently, LAPACK solves stacked
dense systems independently, and the Eq. (7)/(11) ratio algebra is
elementwise. These tests pin the resulting contract — equality to the
last bit, not approximate agreement — so any future vectorization that
reassociates floating-point arithmetic fails loudly instead of silently
shifting controller decisions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.estimator import NextIntervalEstimator, predict_ips_many
from repro.core.local_estimator import LocalBandedEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.perf import splash2_workload
from repro.perf.ips import IPSTracker
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun
from repro.power.dvfs import SCC_DVFS
from repro.power.dynamic import DynamicPowerTracker
from repro.server.trace_workload import ServerIPSPredictor

ESTIMATE_SCALARS = (
    "peak_temp_c",
    "p_chip_w",
    "p_cores_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "epi",
)


@pytest.fixture
def system():
    return build_system(rows=2, cols=2)


def _primed_estimator(cls, system, seed=0):
    est = cls(system=system, ips_predictor=IPSTracker(dvfs=system.dvfs))
    rng = np.random.default_rng(seed)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 2
    )
    # Anchor mid-table so one-level moves exist in both directions.
    mid = system.dvfs.max_level // 2
    state = state.with_dvfs_vector(np.full(system.n_cores, mid))
    temps = 60.0 + 10.0 * rng.random(system.nodes.n_components)
    p = 1.0 + rng.random(system.nodes.n_components)
    ips = 1e9 * (1.0 + rng.random(system.n_cores))
    est.begin_interval(temps, p, ips, state, 2e-3)
    return est, state


def _candidates(system, state):
    cands = []
    for core in range(system.n_cores):
        cands.append(state.with_dvfs(core, int(state.dvfs[core]) + 1))
        cands.append(state.with_dvfs(core, int(state.dvfs[core]) - 1))
    for dev in range(min(4, system.n_tec_devices)):
        cands.append(state.with_tec(dev, 1.0))
    cands.append(state.with_fan(3))
    cands.append(state)
    cands.append(cands[0])  # in-batch duplicate
    return cands


# ----------------------------------------------------------------------
# Layer primitives
# ----------------------------------------------------------------------
def test_solve_many_matches_solve_bitwise(system):
    rng = np.random.default_rng(1)
    p = 1.0 + rng.random((7, system.nodes.n_components))
    tec = np.zeros(system.n_tec_devices)
    tec[:3] = 1.0
    batched = system.solver.solve_many(p, 2, tec)
    for b in range(p.shape[0]):
        single = system.solver.solve(p[b], 2, tec)
        assert np.array_equal(batched[b], single)


def test_solve_many_rejects_vector_input(system):
    from repro.exceptions import ThermalModelError

    with pytest.raises(ThermalModelError):
        system.solver.solve_many(
            np.ones(system.nodes.n_components), 1,
            np.zeros(system.n_tec_devices),
        )


def test_dynamic_tracker_predict_many_bitwise(system):
    rng = np.random.default_rng(2)
    tracker = DynamicPowerTracker(
        dvfs=system.dvfs, tile_of=system.chip.tile_of()
    )
    tracker.observe(
        rng.random(system.nodes.n_components),
        np.full(system.n_cores, 3),
    )
    levels = rng.integers(0, system.dvfs.max_level + 1,
                          size=(9, system.n_cores))
    batched = tracker.predict_many(levels)
    for b in range(levels.shape[0]):
        assert np.array_equal(batched[b], tracker.predict(levels[b]))


def test_ips_tracker_predict_many_bitwise(system):
    rng = np.random.default_rng(3)
    tracker = IPSTracker(dvfs=system.dvfs)
    tracker.observe(
        1e9 * rng.random(system.n_cores), np.full(system.n_cores, 2)
    )
    levels = rng.integers(0, system.dvfs.max_level + 1,
                          size=(9, system.n_cores))
    batched = tracker.predict_many(levels)
    for b in range(levels.shape[0]):
        assert np.array_equal(batched[b], tracker.predict(levels[b]))


def test_server_predictor_predict_many_bitwise():
    rng = np.random.default_rng(4)
    pred = ServerIPSPredictor(dvfs=SCC_DVFS, peak_ips=4e9)
    pred.observe(3e9 * rng.random(4), np.full(4, 3))
    levels = rng.integers(0, SCC_DVFS.max_level + 1, size=(9, 4))
    batched = pred.predict_many(levels)
    for b in range(levels.shape[0]):
        assert np.array_equal(batched[b], pred.predict(levels[b]))
    assert np.array_equal(
        pred.predict_chip_batch(levels), batched.sum(axis=1)
    )


def test_predict_ips_many_falls_back_without_batched_method():
    class Plain:
        def observe(self, ips, dvfs_levels):
            pass

        def predict(self, dvfs_levels):
            return np.asarray(dvfs_levels, dtype=float) * 2.0

    levels = np.arange(12).reshape(4, 3)
    out = predict_ips_many(Plain(), levels)
    assert np.array_equal(out, levels * 2.0)


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [NextIntervalEstimator, LocalBandedEstimator])
def test_evaluate_many_matches_evaluate_bitwise(system, cls):
    est_batched, state = _primed_estimator(cls, system)
    est_seq, _ = _primed_estimator(cls, system)
    cands = _candidates(system, state)
    batched = est_batched.evaluate_many(cands)
    sequential = [est_seq.evaluate(c) for c in cands]
    for b, s in zip(batched, sequential):
        assert np.array_equal(b.t_nodes_k, s.t_nodes_k)
        for name in ESTIMATE_SCALARS:
            assert getattr(b, name) == getattr(s, name)
    # Complexity accounting must agree too: the benchmark's O(NL + N^2 M)
    # claim counts evaluations, not wall time.
    assert est_batched.n_evaluations == est_seq.n_evaluations
    if hasattr(est_batched, "n_core_solves"):
        assert est_batched.n_core_solves == est_seq.n_core_solves


@pytest.mark.parametrize("cls", [NextIntervalEstimator, LocalBandedEstimator])
def test_evaluate_many_populates_memo_cache(system, cls):
    est, state = _primed_estimator(cls, system)
    cands = _candidates(system, state)
    first = est.evaluate_many(cands)
    n_after_batch = est.n_evaluations
    # Every candidate is now memoized: further evaluation is free.
    for cand, got in zip(cands, first):
        assert est.evaluate(cand) is got
    assert est.evaluate_many(cands) == first
    assert est.n_evaluations == n_after_batch


@pytest.mark.parametrize("cls", [NextIntervalEstimator, LocalBandedEstimator])
def test_evaluate_many_requires_begin_interval(system, cls):
    from repro.exceptions import ControlError

    est = cls(system=system, ips_predictor=IPSTracker(dvfs=system.dvfs))
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 1
    )
    with pytest.raises(ControlError):
        est.evaluate_many([state])


# ----------------------------------------------------------------------
# Whole-engine decision identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["banded", "full"])
def test_engine_metrics_identical_batched_vs_sequential(kind):
    def run(batched: bool):
        system = build_system(rows=2, cols=2)
        wl = splash2_workload("lu", 4, system.chip)
        engine = SimulationEngine(
            system,
            EnergyProblem(t_threshold_c=70.0),
            EngineConfig(max_time_s=0.05),
        )
        controller = TECfanController(batched=batched, estimator_kind=kind)
        return engine.run(
            WorkloadRun(wl, system.chip, REF_FREQ_GHZ), controller
        )

    res_b, res_s = run(True), run(False)
    assert res_b.metrics == res_s.metrics
    assert res_b.trace._rows == res_s.trace._rows
    assert res_b.final_state.key() == res_s.final_state.key()
