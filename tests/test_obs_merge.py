"""Cross-process telemetry aggregation: merge semantics + conservation.

Worker functions live at module level: the spawn start method pickles
them by qualified name and re-imports this module in each child.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
from repro.core.problem import EnergyProblem
from repro.core.system import build_system
from repro.exceptions import ObservabilityError
from repro.obs import (
    Telemetry,
    WorkerTelemetry,
    capture_worker_telemetry,
    telemetry_session,
)
from repro.obs import telemetry as obs
from repro.parallel import parallel_map
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun


def _worker_session(**counters) -> Telemetry:
    tel = Telemetry()
    for name, value in counters.items():
        tel.metrics.counter(name).inc(value)
    return tel


# ----------------------------------------------------------------------
# unit semantics
# ----------------------------------------------------------------------
def test_counters_sum_across_merges():
    parent = Telemetry()
    parent.metrics.counter("c").inc(1)
    parent.merge(_worker_session(c=2))
    parent.merge(_worker_session(c=5))
    assert parent.metrics.counter("c").value == 8


def test_gauge_merge_is_last_writer_with_max_companion():
    parent = Telemetry()
    parent.metrics.gauge("fan.level").set(3.0)
    w = Telemetry()
    w.metrics.gauge("fan.level").set(1.0)
    parent.merge(w)
    assert parent.metrics.gauge("fan.level").value == 1.0  # last writer
    assert parent.metrics.gauge("fan.level.max").value == 3.0  # peak kept


def test_gauge_max_companion_nests_across_merge_levels():
    # A merged stream re-merged into a higher level must keep the true
    # peak: the incoming .max companion folds by max, not last-writer.
    mid = Telemetry()
    w = Telemetry()
    w.metrics.gauge("g").set(9.0)
    mid.merge(w)
    mid.metrics.gauge("g").set(2.0)
    top = Telemetry()
    top.merge(mid)
    assert top.metrics.gauge("g").value == 2.0
    assert top.metrics.gauge("g.max").value == 9.0


def test_histogram_merge_sums_counts_including_overflow():
    edges = (1.0, 2.0)
    parent = Telemetry()
    parent.metrics.histogram("h", edges).observe(0.5)
    w = Telemetry()
    hw = w.metrics.histogram("h", edges)
    hw.observe(1.5)
    hw.observe(99.0)  # overflow bucket
    parent.merge(w)
    h = parent.metrics.histogram("h", edges)
    assert h.count == 3
    assert list(h.counts) == [1, 1, 1]
    assert h.max == 99.0
    assert h.min == 0.5


def test_histogram_merge_rejects_different_edges():
    parent = Telemetry()
    parent.metrics.histogram("h", (1.0, 2.0)).observe(0.5)
    w = Telemetry()
    w.metrics.histogram("h", (1.0, 4.0)).observe(0.5)
    with pytest.raises(ObservabilityError, match="different edges"):
        parent.merge(w)


def test_span_merge_reparents_worker_roots():
    parent = Telemetry()
    w = Telemetry()
    with w.span("task"):
        with w.span("solve"):
            pass
    parent.merge(w, label="worker=3")
    assert parent.spans.edges[(None, "worker=3")] == 1
    assert parent.spans.edges[("worker=3", "task")] == 1
    assert parent.spans.edges[("task", "solve")] == 1
    assert parent.spans.stats["task"].count == 1


def test_span_merge_sums_stats():
    parent = Telemetry()
    with parent.span("task"):
        pass
    w = Telemetry()
    with w.span("task"):
        pass
    parent.merge(w, label="worker=0")
    st_ = parent.spans.stats["task"]
    assert st_.count == 2
    assert st_.total_s >= st_.max_s >= st_.min_s > 0


def test_merge_accepts_picklable_capture():
    w = Telemetry()
    w.metrics.counter("c").inc(3)
    w.event("interval", i=0)
    cap = capture_worker_telemetry(w)
    assert isinstance(cap, WorkerTelemetry)
    assert cap.events_discarded == 1  # events never ship; they count
    parent = Telemetry()
    parent.merge(cap, label="worker=0")
    assert parent.metrics.counter("c").value == 3


def test_merge_rejects_unknown_types():
    with pytest.raises(TypeError):
        Telemetry().merge({"counters": {}})


# ----------------------------------------------------------------------
# property: counter conservation over random fan-outs
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    fanout=st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=100),
            max_size=3,
        ),
        min_size=1,
        max_size=8,
    )
)
def test_merged_counters_equal_sum_of_workers(fanout):
    parent = Telemetry()
    expected: dict[str, int] = {}
    for i, counters in enumerate(fanout):
        for name, value in counters.items():
            expected[name] = expected.get(name, 0) + value
        parent.merge(
            capture_worker_telemetry(_worker_session(**counters)),
            label=f"worker={i}",
        )
    got = {
        name: c.value
        for name, c in parent.metrics._counters.items()
        if c.value
    }
    assert got == {k: v for k, v in expected.items() if v}


# ----------------------------------------------------------------------
# integration through parallel_map
# ----------------------------------------------------------------------
def _instrumented_square(x):
    obs.incr("task.calls")
    obs.incr("task.units", x)
    with obs.span("task.sq"):
        obs.observe("task.ms", float(x))
        obs.event("tick", x=x)  # never ships; accounted as dropped
    return x * x


def test_parallel_map_merges_worker_telemetry():
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(_instrumented_square, [1, 2, 3, 4], jobs=2)
    assert out == [1, 4, 9, 16]
    assert tel.metrics.counter("task.calls").value == 4
    assert tel.metrics.counter("task.units").value == 10
    assert tel.metrics.counter("parallel.worker_sessions").value == 4
    assert tel.metrics.counter("parallel.worker_events_dropped").value == 4
    h = tel.metrics.histogram("task.ms")
    assert h.count == 4
    # Each task ran as its own labelled root in the call graph.
    assert sum(
        c for (p, _), c in tel.spans.edges.items()
        if p and p.startswith("worker=")
    ) == 4
    assert tel.spans.stats["task.sq"].count == 4


def test_parallel_map_without_session_stays_silent():
    assert parallel_map(_instrumented_square, [2, 3], jobs=2) == [4, 9]


def test_resilient_path_merges_too():
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(
            _instrumented_square, [1, 2, 3], jobs=2, retries=1
        )
    assert out == [1, 4, 9]
    assert tel.metrics.counter("task.calls").value == 3
    assert tel.metrics.counter("parallel.worker_sessions").value == 3


# ----------------------------------------------------------------------
# conservation: a parallel sweep counts exactly what a serial one does
# ----------------------------------------------------------------------
def test_fan_sweep_counters_conserved_across_jobs():
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=0.02),
    )

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    def counters(jobs):
        tel = Telemetry()
        with telemetry_session(tel):
            run_fan_sweep(engine, make_run, FanTECController(), jobs=jobs)
        return {n: c.value for n, c in tel.metrics._counters.items()}

    serial = counters(None)
    merged = counters(2)
    # parallel.* describes the fan-out itself; the LU-cache counters
    # depend on cache sharing (serial runs share one solver, workers get
    # pickled copies with the cache dropped) — everything else must
    # conserve exactly.
    skip = ("parallel.",)
    unstable = {"thermal.factorizations", "thermal.lu_evictions"}
    deterministic = {
        n: v
        for n, v in serial.items()
        if not n.startswith(skip) and n not in unstable
    }
    assert deterministic  # the sweep must actually count something
    for name, value in deterministic.items():
        assert merged.get(name) == value, name
