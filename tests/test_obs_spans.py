"""Span tracking: nesting, aggregation, self-time, call edges."""

import pytest

from repro.obs import SpanTracker, Telemetry


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracker(clock):
    return SpanTracker(clock=clock)


def test_single_span_aggregates(tracker, clock):
    for dur in (1.0, 3.0):
        tracker.start("engine.step")
        clock.now += dur
        tracker.stop()
    st = tracker.stats["engine.step"]
    assert st.count == 2
    assert st.total_s == pytest.approx(4.0)
    assert st.mean_s == pytest.approx(2.0)
    assert st.min_s == pytest.approx(1.0)
    assert st.max_s == pytest.approx(3.0)
    assert st.self_s == pytest.approx(4.0)  # no children


def test_nested_spans_self_time_and_edges(tracker, clock):
    tracker.start("engine.step")
    clock.now += 1.0
    tracker.start("thermal.solve")
    clock.now += 2.0
    tracker.stop()
    clock.now += 0.5
    tracker.start("thermal.solve")
    clock.now += 1.5
    tracker.stop()
    tracker.stop()

    outer = tracker.stats["engine.step"]
    inner = tracker.stats["thermal.solve"]
    assert outer.total_s == pytest.approx(5.0)
    assert outer.self_s == pytest.approx(1.5)  # 5.0 - (2.0 + 1.5)
    assert inner.count == 2
    assert inner.total_s == pytest.approx(3.5)
    assert inner.self_s == pytest.approx(3.5)

    edges = {(e["parent"], e["child"]): e["count"]
             for e in tracker.edge_snapshot()}
    assert edges[(None, "engine.step")] == 1
    assert edges[("engine.step", "thermal.solve")] == 2


def test_depth_tracks_open_spans(tracker):
    assert tracker.depth == 0
    tracker.start("a")
    tracker.start("b")
    assert tracker.depth == 2
    tracker.stop()
    tracker.stop()
    assert tracker.depth == 0


def test_snapshot_is_json_safe_and_sorted(tracker, clock):
    for name in ("b.second", "a.first"):
        tracker.start(name)
        clock.now += 1.0
        tracker.stop()
    snap = tracker.snapshot()
    assert list(snap) == ["a.first", "b.second"]
    assert set(snap["a.first"]) == {
        "count", "total_s", "mean_s", "self_s", "min_s", "max_s"
    }


def test_reset_clears_everything(tracker, clock):
    tracker.start("x")
    clock.now += 1.0
    tracker.stop()
    tracker.start("open")
    tracker.reset()
    assert tracker.stats == {}
    assert tracker.edges == {}
    assert tracker.depth == 0


def test_telemetry_span_context_manager_nests():
    tel = Telemetry()
    with tel.span("outer"):
        with tel.span("inner"):
            pass
    assert tel.spans.stats["outer"].count == 1
    assert tel.spans.stats["inner"].count == 1
    assert (("outer", "inner") in tel.spans.edges)


def test_telemetry_span_closes_on_exception():
    tel = Telemetry()
    with pytest.raises(RuntimeError):
        with tel.span("risky"):
            raise RuntimeError("boom")
    assert tel.spans.depth == 0
    assert tel.spans.stats["risky"].count == 1


def test_span_histogram_feed():
    tel = Telemetry()
    with tel.span("thermal.solve", hist_ms="thermal.solver_ms"):
        pass
    snap = tel.metrics.snapshot()
    assert snap["histograms"]["thermal.solver_ms"]["count"] == 1
