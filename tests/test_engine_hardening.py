"""Hardened engine loop: fault wiring, watchdog, health, fallback.

The contract under test: enabling the robustness machinery without any
active fault changes *nothing* (bit-identical traces), and with faults
active the guards keep the run alive and inside the envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.exceptions import ThermalModelError
from repro.faults import (
    FanStuckFault,
    FaultScheduler,
    HealthConfig,
    SensorStuckFault,
    TECStuckFault,
    WatchdogConfig,
)
from repro.obs import Telemetry, telemetry_session
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun

MAX_TIME_S = 0.02


def _run(system4, cfg, controller=None, t_threshold_c=74.0, fan_level=2):
    engine = SimulationEngine(
        system4, EnergyProblem(t_threshold_c=t_threshold_c), cfg
    )
    wl = splash2_workload("lu", 4, system4.chip)
    state = ActuatorState.initial(
        system4.n_tec_devices,
        system4.n_cores,
        system4.dvfs.max_level,
        fan_level=fan_level,
    )
    return engine.run(
        WorkloadRun(wl, system4.chip, REF_FREQ_GHZ),
        controller if controller is not None else TECfanController(),
        initial_state=state,
    )


def _counters(tel):
    return tel.metrics.snapshot()["counters"]


# ----------------------------------------------------------------------
# Acceptance criterion: no-fault runs are bit-identical to the classic
# engine even with every guard armed.
# ----------------------------------------------------------------------
def test_hardened_idle_is_bit_identical_to_classic(system4):
    classic = _run(system4, EngineConfig(max_time_s=MAX_TIME_S))
    hardened = _run(
        system4,
        EngineConfig(
            max_time_s=MAX_TIME_S,
            faults=FaultScheduler(),  # armed, but the script is empty
            watchdog=WatchdogConfig(),
            health=HealthConfig(),
            estimator_fallback=True,
        ),
    )
    for fld in (
        "time_s",
        "dt_s",
        "peak_temp_c",
        "p_chip_w",
        "p_tec_w",
        "p_fan_w",
        "ips_chip",
        "tec_on",
        "fan_level",
        "mean_dvfs_level",
    ):
        assert np.array_equal(
            getattr(hardened.trace, fld), getattr(classic.trace, fld)
        ), fld
    assert hardened.metrics == classic.metrics
    assert np.array_equal(hardened.final_state.tec, classic.final_state.tec)
    assert np.array_equal(hardened.final_state.dvfs, classic.final_state.dvfs)
    assert hardened.final_state.fan_level == classic.final_state.fan_level


def test_inactive_fault_window_is_also_bit_identical(system4):
    # A scripted fault whose window never opens must not perturb the run.
    classic = _run(system4, EngineConfig(max_time_s=MAX_TIME_S))
    scripted = _run(
        system4,
        EngineConfig(
            max_time_s=MAX_TIME_S,
            faults=FaultScheduler([FanStuckFault(level=6, t_start_s=1e6)]),
        ),
    )
    assert np.array_equal(
        scripted.trace.peak_temp_c, classic.trace.peak_temp_c
    )
    assert scripted.metrics == classic.metrics


def test_hardened_runs_are_repeatable(system4):
    cfg = EngineConfig(
        max_time_s=MAX_TIME_S,
        faults=FaultScheduler(
            [TECStuckFault(device=0, mode="stuck_on", t_start_s=0.0)]
        ),
        watchdog=WatchdogConfig(),
        health=HealthConfig(),
        estimator_fallback=True,
    )
    a = _run(system4, cfg)
    b = _run(system4, cfg)  # same engine config, fresh run: reset() works
    assert np.array_equal(a.trace.peak_temp_c, b.trace.peak_temp_c)
    assert a.metrics == b.metrics


# ----------------------------------------------------------------------
# Fault wiring: the plant runs on effective actuation
# ----------------------------------------------------------------------
def test_fan_fault_hits_plant_and_trace(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        res = _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                faults=FaultScheduler(
                    [FanStuckFault(level=6, t_start_s=0.01)]
                ),
            ),
        )
    lv = res.trace.fan_level
    assert lv[0] == 2  # healthy prefix at the commanded level
    assert lv[-1] == 6  # effective (faulted) level is what is recorded
    assert _counters(tel)["faults.injected"] == 1


def test_tec_fault_changes_recorded_tec_count(system4):
    res = _run(
        system4,
        EngineConfig(
            max_time_s=MAX_TIME_S,
            faults=FaultScheduler(
                [
                    TECStuckFault(
                        device=d, mode="stuck_on", t_start_s=0.0
                    )
                    for d in range(system4.n_tec_devices)
                ]
            ),
        ),
        t_threshold_c=90.0,  # cool run: policy would keep TECs off
    )
    assert res.trace.tec_on[0] == system4.n_tec_devices


# ----------------------------------------------------------------------
# Watchdog: trip to the refuge, skip the policy
# ----------------------------------------------------------------------
def test_watchdog_trips_to_safe_state(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        res = _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                watchdog=WatchdogConfig(trip_intervals=2),
            ),
            t_threshold_c=40.0,  # unreachable: every interval is hot
        )
    assert _counters(tel)["watchdog.trips"] == 1
    final = res.final_state
    assert final.dvfs.tolist() == [0] * system4.n_cores
    assert final.tec.tolist() == [1.0] * system4.n_tec_devices
    assert final.fan_level == 1
    # The refuge overrides the policy: every TEC is driven on, which
    # the energy-minimizing policy never does on its own.
    assert res.trace.tec_on[-1] == system4.n_tec_devices
    assert res.trace.mean_dvfs_level[-1] == 0.0


def test_watchdog_disabled_never_trips(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        _run(
            system4,
            EngineConfig(max_time_s=MAX_TIME_S, health=HealthConfig()),
            t_threshold_c=40.0,
        )
    assert _counters(tel).get("watchdog.trips", 0) == 0


# ----------------------------------------------------------------------
# Health monitor: mask + reconcile inside the loop
# ----------------------------------------------------------------------
def test_dead_fan_is_masked_and_reconciled(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        res = _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                faults=FaultScheduler([FanStuckFault(level=6, t_start_s=0.0)]),
                health=HealthConfig(),
            ),
        )
    assert _counters(tel)["health.masked_actuators"] >= 1
    # Reconciliation: the state the controller carries now tells the
    # truth about the fan, so the estimator predicts with level 6.
    assert res.final_state.fan_level == 6


def test_stuck_on_tec_masked(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        res = _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                faults=FaultScheduler(
                    [TECStuckFault(device=0, mode="stuck_on", t_start_s=0.0)]
                ),
                health=HealthConfig(),
            ),
            t_threshold_c=90.0,  # cool run: the policy commands TECs off
        )
    assert _counters(tel)["health.masked_actuators"] >= 1
    assert res.final_state.tec[0] == 1.0  # reconciled to the truth


def test_lying_cold_sensor_masked(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                faults=FaultScheduler(
                    [SensorStuckFault(component=0, value_c=5.0, t_start_s=0.005)]
                ),
                health=HealthConfig(),
            ),
        )
    assert _counters(tel)["health.masked_sensors"] == 1


# ----------------------------------------------------------------------
# Estimator fallback: solver failures hold the last safe action
# ----------------------------------------------------------------------
class _BrittleController(TECfanController):
    """Fails on a fixed schedule, as a singular what-if solve would."""

    def __init__(self, fail_every=3):
        super().__init__()
        self.fail_every = fail_every
        self._calls = 0

    def decide(self, state, sensor_temps_c, estimator, problem):
        self._calls += 1
        if self._calls % self.fail_every == 0:
            raise ThermalModelError("what-if solve went singular")
        return super().decide(state, sensor_temps_c, estimator, problem)


def test_estimator_fallback_holds_last_action(system4):
    tel = Telemetry()
    with telemetry_session(tel):
        # priming_intervals=0: the priming pass is deliberately
        # guard-free, so a failure there would (correctly) propagate.
        res = _run(
            system4,
            EngineConfig(
                max_time_s=MAX_TIME_S,
                estimator_fallback=True,
                priming_intervals=0,
            ),
            controller=_BrittleController(),
        )
    assert len(res.trace) > 0  # survived every scheduled failure
    assert _counters(tel)["controller.fallbacks"] >= 3


def test_without_fallback_estimator_failure_propagates(system4):
    with pytest.raises(ThermalModelError):
        _run(
            system4,
            EngineConfig(max_time_s=MAX_TIME_S, priming_intervals=0),
            controller=_BrittleController(),
        )
