"""Trace analysis toolkit: diff gating, flame reconstruction, anomalies."""

from __future__ import annotations

import json

import pytest

from repro.analysis.tracetools import (
    detect_anomalies,
    diff_streams,
    flame_folded,
    format_anomalies,
    format_trace_diff,
)
from repro.cli import main
from repro.obs import MANIFEST_SCHEMA


def _stream(spans=None, counters=None, edges=None, events=None,
            context=None):
    return {
        "manifest": {"schema": MANIFEST_SCHEMA, "context": context or {}},
        "spans": spans or {},
        "span_edges": edges or [],
        "counters": counters or {},
        "gauges": {},
        "histograms": {},
        "events": events or [],
    }


def _span(total_s, self_s=None):
    return {"count": 1, "total_s": total_s, "mean_s": total_s,
            "self_s": total_s if self_s is None else self_s,
            "min_s": total_s, "max_s": total_s}


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
def test_identical_streams_diff_clean():
    a = _stream(spans={"engine.step": _span(0.5)}, counters={"c": 10})
    diff = diff_streams(a, a)
    assert diff.ok
    assert not any(r.regressed for r in diff.rows)
    assert "no regressions" in format_trace_diff(diff)


def test_span_regression_past_threshold_gates():
    a = _stream(spans={"engine.step": _span(0.100)})
    b = _stream(spans={"engine.step": _span(0.150)})
    diff = diff_streams(a, b, span_threshold_pct=10.0)
    assert not diff.ok
    (row,) = diff.regressions
    assert row.name == "engine.step"
    assert row.pct == pytest.approx(50.0)
    assert "REGRESSED" in format_trace_diff(diff)
    # Improvements never gate.
    assert diff_streams(b, a, span_threshold_pct=10.0).ok


def test_noise_floor_suppresses_tiny_spans():
    a = _stream(spans={"blip": _span(0.0001)})
    b = _stream(spans={"blip": _span(0.0005)})  # +400%, but 0.5 ms total
    assert diff_streams(a, b, min_total_ms=1.0).ok
    assert not diff_streams(a, b, min_total_ms=0.01).ok


def test_counter_growth_gates_but_new_counters_do_not():
    a = _stream(counters={"hot": 100, "fresh": 0})
    b = _stream(counters={"hot": 150, "fresh": 40, "brand_new": 5})
    diff = diff_streams(a, b, counter_threshold_pct=10.0)
    regressed = {r.name for r in diff.regressions}
    assert regressed == {"hot"}  # zero-baseline and only-in-B are informational
    assert "brand_new" in diff.only_b
    rendered = format_trace_diff(diff)
    assert "+inf" in rendered  # fresh: 0 -> 40 reported, not gated


# ----------------------------------------------------------------------
# trace flame
# ----------------------------------------------------------------------
def test_flame_folded_single_chain():
    parsed = _stream(
        spans={"root": _span(1.0, self_s=1.0), "a": _span(0.5, self_s=0.5)},
        edges=[
            {"parent": None, "child": "root", "count": 1},
            {"parent": "root", "child": "a", "count": 2},
        ],
    )
    lines = flame_folded(parsed).splitlines()
    assert lines == ["root 1000000", "root;a 500000"]


def test_flame_distributes_self_time_by_edge_fractions():
    # c is reached 3 times via r1 and once via r2: its 0.4 s of self
    # time splits 0.3 / 0.1 between the two paths.
    parsed = _stream(
        spans={
            "r1": _span(1.0, self_s=0.0),
            "r2": _span(1.0, self_s=0.0),
            "c": _span(0.4, self_s=0.4),
        },
        edges=[
            {"parent": None, "child": "r1", "count": 1},
            {"parent": None, "child": "r2", "count": 1},
            {"parent": "r1", "child": "c", "count": 3},
            {"parent": "r2", "child": "c", "count": 1},
        ],
    )
    lines = dict(
        line.rsplit(" ", 1) for line in flame_folded(parsed).splitlines()
    )
    assert int(lines["r1;c"]) == 300000
    assert int(lines["r2;c"]) == 100000


def test_flame_tolerates_label_only_roots_and_cycles():
    # worker=N labels have no span stats; merged streams can also fold
    # recursion into an a->a edge — neither may crash or loop.
    parsed = _stream(
        spans={"task": _span(0.2, self_s=0.2)},
        edges=[
            {"parent": None, "child": "worker=0", "count": 1},
            {"parent": "worker=0", "child": "task", "count": 1},
            {"parent": "task", "child": "task", "count": 4},
        ],
    )
    out = flame_folded(parsed)
    assert "worker=0;task 200000" in out.splitlines()


def test_flame_empty_stream_is_empty():
    assert flame_folded(_stream()) == ""


# ----------------------------------------------------------------------
# trace anomalies
# ----------------------------------------------------------------------
def _interval(t, peak=80.0, fan=2, tec=0, p=50.0, ips=25e9):
    return {"kind": "interval", "time_s": t, "peak_temp_c": peak,
            "fan_level": fan, "tec_on": tec, "p_chip_w": p,
            "ips_chip": ips}


def test_thermal_excursion_detected_with_manifest_threshold():
    events = [_interval(i * 0.002) for i in range(10)]
    for i in (4, 5, 6):
        events[i] = _interval(i * 0.002, peak=88.0)
    parsed = _stream(events=events, context={"t_threshold_c": 85.0})
    anomalies = detect_anomalies(parsed)
    kinds = [a.kind for a in anomalies]
    assert "thermal_excursion" in kinds
    exc = next(a for a in anomalies if a.kind == "thermal_excursion")
    assert exc.value == pytest.approx(88.0)
    assert exc.t_start_s == pytest.approx(0.008)
    assert exc.t_end_s == pytest.approx(0.012)


def test_no_threshold_available_skips_thermal_scan():
    events = [_interval(i * 0.002, peak=200.0) for i in range(10)]
    parsed = _stream(events=events)  # no context, no --threshold
    assert all(
        a.kind != "thermal_excursion" for a in detect_anomalies(parsed)
    )


def test_oscillation_detected_on_fan_limit_cycle():
    events = []
    for i in range(24):
        events.append(_interval(i * 0.002, fan=2 + (i % 2)))  # 2,3,2,3...
    parsed = _stream(events=events)
    anomalies = detect_anomalies(parsed)
    osc = [a for a in anomalies if a.kind == "oscillation"]
    assert len(osc) == 1
    assert osc[0].value >= 6
    assert "fan" in osc[0].detail


def test_monotone_actuators_do_not_oscillate():
    events = [_interval(i * 0.002, fan=min(4, 1 + i // 3)) for i in range(24)]
    parsed = _stream(events=events)
    assert not [
        a for a in detect_anomalies(parsed) if a.kind == "oscillation"
    ]


def test_epi_drift_detected():
    events = [
        _interval(i * 0.002, p=50.0 + (30.0 if i >= 8 else 0.0))
        for i in range(16)
    ]
    parsed = _stream(events=events)
    drift = [a for a in detect_anomalies(parsed) if a.kind == "epi_drift"]
    assert len(drift) == 1
    assert drift[0].value == pytest.approx(60.0)


def test_epi_scan_skips_streams_without_ips_chip():
    # Schema-1 streams predate the ips_chip event field.
    events = [_interval(i * 0.002) for i in range(16)]
    for ev in events:
        del ev["ips_chip"]
    parsed = _stream(events=events)
    assert not [
        a for a in detect_anomalies(parsed) if a.kind == "epi_drift"
    ]


def test_format_anomalies_all_clear():
    assert "none detected" in format_anomalies([])


# ----------------------------------------------------------------------
# CLI wiring and exit codes
# ----------------------------------------------------------------------
def _write_stream(path, parsed):
    records = [{"type": "manifest", **parsed["manifest"]}]
    for name, stats in parsed["spans"].items():
        records.append({"type": "span", "name": name, **stats})
    for edge in parsed["span_edges"]:
        records.append({"type": "span_edge", **edge})
    for name, value in parsed["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for ev in parsed["events"]:
        records.append({"type": "event", **ev})
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )


def test_cli_trace_diff_exit_codes(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _write_stream(a, _stream(spans={"engine.step": _span(0.100)}))
    _write_stream(b, _stream(spans={"engine.step": _span(0.200)}))
    assert main(["trace", "diff", str(a), str(a)]) == 0
    assert main(["trace", "diff", str(a), str(b)]) == 1
    # A generous threshold un-gates the same pair.
    assert main(
        ["trace", "diff", str(a), str(b), "--span-threshold-pct", "150"]
    ) == 0
    assert main(["trace", "diff", str(a), str(tmp_path / "nope.jsonl")]) == 2
    capsys.readouterr()


def test_cli_trace_flame_writes_folded_file(tmp_path, capsys):
    src = tmp_path / "run.jsonl"
    _write_stream(
        src,
        _stream(
            spans={"root": _span(1.0)},
            edges=[{"parent": None, "child": "root", "count": 1}],
        ),
    )
    out = tmp_path / "folded.txt"
    assert main(["trace", "flame", str(src), "-o", str(out)]) == 0
    capsys.readouterr()
    # Folded-stack grammar: "frame(;frame)* <positive int>" per line.
    for line in out.read_text().splitlines():
        stack, value = line.rsplit(" ", 1)
        assert stack and int(value) > 0


def test_cli_trace_anomalies_strict_gate(tmp_path, capsys):
    hot = tmp_path / "hot.jsonl"
    events = [_interval(i * 0.002, peak=90.0) for i in range(10)]
    _write_stream(
        hot, _stream(events=events, context={"t_threshold_c": 85.0})
    )
    assert main(["trace", "anomalies", str(hot)]) == 0
    assert main(["trace", "anomalies", str(hot), "--strict"]) == 1
    assert main(
        ["trace", "anomalies", str(hot), "--strict", "--threshold", "95"]
    ) == 0
    out = capsys.readouterr().out
    assert "thermal_excursion" in out
