"""Full-model next-interval estimator."""

import numpy as np
import pytest

from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.exceptions import ControlError
from repro.perf.ips import IPSTracker


@pytest.fixture()
def primed(system2, base_state2):
    est = NextIntervalEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    n_comp = system2.nodes.n_components
    temps = np.full(n_comp, 70.0)
    p_dyn = np.full(n_comp, 0.15)
    ips = np.full(system2.n_cores, 1.2e9)
    est.begin_interval(temps, p_dyn, ips, base_state2, 2e-3)
    return est


def test_evaluate_before_begin_raises(system2, base_state2):
    est = NextIntervalEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    with pytest.raises(ControlError):
        est.evaluate(base_state2)


def test_nonpositive_dt_rejected(system2, base_state2):
    est = NextIntervalEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    with pytest.raises(ControlError):
        est.begin_interval(
            np.full(system2.nodes.n_components, 70.0),
            np.full(system2.nodes.n_components, 0.1),
            np.full(system2.n_cores, 1e9),
            base_state2,
            0.0,
        )


def test_estimate_fields_consistent(primed, base_state2, system2):
    e = primed.evaluate(base_state2)
    assert e.p_chip_w == pytest.approx(
        e.p_cores_w + e.p_tec_w + e.p_fan_w
    )
    assert e.p_fan_w == pytest.approx(system2.fan.power_w(1))
    assert e.ips_chip == pytest.approx(2 * 1.2e9)
    assert e.epi == pytest.approx(e.p_chip_w / e.ips_chip)
    assert e.t_nodes_k.shape == (system2.nodes.n_nodes,)


def test_memoization_counts_once(primed, base_state2):
    primed.evaluate(base_state2)
    n = primed.n_evaluations
    primed.evaluate(base_state2)
    assert primed.n_evaluations == n  # cache hit


def test_lower_dvfs_lowers_power_and_ips(primed, base_state2):
    e0 = primed.evaluate(base_state2)
    e1 = primed.evaluate(base_state2.with_dvfs(0, 0))
    assert e1.p_cores_w < e0.p_cores_w
    assert e1.ips_chip < e0.ips_chip


def test_tec_on_costs_power_lowers_hotspot(primed, base_state2, system2):
    e0 = primed.evaluate(base_state2)
    cand = base_state2.with_tec_vector(np.ones(system2.n_tec_devices))
    e1 = primed.evaluate(cand)
    assert e1.p_tec_w > 0.0
    assert e1.peak_temp_c <= e0.peak_temp_c + 1e-9


def test_slower_fan_cheaper_but_hotter(primed, base_state2):
    e0 = primed.evaluate(base_state2)
    e1 = primed.evaluate(base_state2.with_fan(3))
    assert e1.p_fan_w < e0.p_fan_w
    assert e1.peak_temp_c > e0.peak_temp_c


def test_feasibility_helper(primed, base_state2):
    e = primed.evaluate(base_state2)
    assert e.feasible(EnergyProblem(t_threshold_c=e.peak_temp_c + 1.0))
    assert not e.feasible(EnergyProblem(t_threshold_c=e.peak_temp_c - 1.0))


def test_commit_adopts_field(primed, base_state2):
    e = primed.evaluate(base_state2.with_fan(3))
    primed.commit(e)
    np.testing.assert_array_equal(primed._t_nodes_k, e.t_nodes_k)


def test_fan_setting_estimate(primed, system2):
    p = np.full(system2.nodes.n_components, 0.15)
    tec = np.zeros(system2.n_tec_devices)
    peak1 = primed.evaluate_fan_setting(p, tec, 1)
    peak3 = primed.evaluate_fan_setting(p, tec, 3)
    assert peak3 > peak1
