"""Thermal node bookkeeping."""

import numpy as np
import pytest

from repro.thermal.package import PackageStack
from repro.thermal.rc_network import ThermalNodes


@pytest.fixture()
def nodes(chip2):
    return ThermalNodes(chip2, PackageStack())


def test_node_layout(nodes, chip2):
    n_comp = chip2.n_components
    assert nodes.n_nodes == n_comp + 2 * chip2.n_tiles
    assert nodes.component_slice == slice(0, n_comp)
    assert nodes.spreader_slice == slice(n_comp, n_comp + chip2.n_tiles)
    assert nodes.sink_slice == slice(
        n_comp + chip2.n_tiles, n_comp + 2 * chip2.n_tiles
    )


def test_index_helpers(nodes, chip2):
    assert nodes.spreader_index(0) == chip2.n_components
    assert nodes.sink_index(1) == chip2.n_components + chip2.n_tiles + 1


def test_capacities_positive_and_scaled(nodes):
    assert np.all(nodes.capacities > 0)
    # Die nodes are much lighter than spreader nodes, which are lighter
    # than sink nodes (the time-scale separation of Sec. III-D).
    comp_max = nodes.capacities[nodes.component_slice].max()
    sp_min = nodes.capacities[nodes.spreader_slice].min()
    sink_min = nodes.capacities[nodes.sink_slice].min()
    assert comp_max < sp_min < sink_min


def test_sink_capacity_split(nodes, chip2):
    pkg = nodes.package
    total = nodes.capacities[nodes.sink_slice].sum()
    assert total == pytest.approx(pkg.sink_heat_capacity_j_per_k)


def test_expand_component_values(nodes, chip2):
    v = np.arange(chip2.n_components, dtype=float)
    full = nodes.expand_component_values(v)
    assert full.shape == (nodes.n_nodes,)
    np.testing.assert_array_equal(full[nodes.component_slice], v)
    assert np.all(full[chip2.n_components:] == 0.0)
