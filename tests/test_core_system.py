"""CMPSystem bundle construction."""

import numpy as np
import pytest

from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.power.dvfs import I7_DVFS


def test_default_is_paper_platform(system16):
    assert system16.n_cores == 16
    assert system16.n_tec_devices == 144  # 16 x 9
    assert system16.nodes.n_nodes == 16 * 18 + 16 + 16


def test_small_variants(system2, system4):
    assert system2.n_cores == 2
    assert system4.n_cores == 4


def test_custom_dvfs_table():
    s = build_system(rows=1, cols=2, dvfs=I7_DVFS)
    assert s.dvfs is I7_DVFS


def test_power_models_scaled_by_tile_count(system2, system16):
    p2 = system2.power.component_power.chip_peak_dynamic_w
    p16 = system16.power.component_power.chip_peak_dynamic_w
    assert p16 == pytest.approx(8 * p2)


def test_uniform_initial_field(system2):
    t = system2.uniform_initial_temps_k()
    np.testing.assert_allclose(t, system2.package.ambient_k)


def test_component_temps_c(system2):
    t = system2.uniform_initial_temps_k()
    c = system2.component_temps_c(t)
    assert c.shape == (system2.nodes.n_components,)
    np.testing.assert_allclose(c, system2.package.ambient_c)


def test_tec_power_all_off_is_zero(system2):
    t = system2.uniform_initial_temps_k()
    assert system2.tec_power_w(np.zeros(system2.n_tec_devices), t) == 0.0


def test_tec_power_eq9_total(system2):
    """All on at a uniform field: P = L * I^2 r (no gradient term)."""
    t = system2.uniform_initial_temps_k()
    p = system2.tec_power_w(np.ones(system2.n_tec_devices), t)
    assert p == pytest.approx(system2.n_tec_devices * system2.tec.joule_w)


def test_shared_solver_instances(system2):
    assert system2.solver.model is system2.cond
    assert system2.plant_thermal.solver is system2.solver
