"""Shared fixtures: small platforms so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.floorplan.chip import build_chip


@pytest.fixture(scope="session")
def chip2():
    """A 1 x 2 tile chip (two cores, 36 components)."""
    return build_chip(rows=1, cols=2)


@pytest.fixture(scope="session")
def chip16():
    """The paper's 4 x 4 target chip."""
    return build_chip(rows=4, cols=4)


@pytest.fixture(scope="session")
def system2():
    """Small system for controller/thermal tests."""
    return build_system(rows=1, cols=2)


@pytest.fixture(scope="session")
def system4():
    """The 2 x 2 server-scale system (SCC DVFS, default package)."""
    return build_system(rows=2, cols=2)


@pytest.fixture(scope="session")
def system16():
    """The full 16-core platform (expensive; reuse across tests)."""
    return build_system()


@pytest.fixture()
def base_state2(system2):
    """Base actuator state for the small system."""
    return ActuatorState.initial(
        system2.n_tec_devices,
        system2.n_cores,
        system2.dvfs.max_level,
        fan_level=1,
    )


def full_activity(system) -> np.ndarray:
    """Activity vector with every core busy."""
    return np.ones(system.n_cores)
