"""Leakage models: Eq. (6) linear and quadratic plant-side."""

import numpy as np
import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.power.leakage import LinearLeakage, QuadraticLeakage

AREAS = np.array([1.0, 2.0, 3.0, 4.0])


@pytest.fixture()
def linear():
    return LinearLeakage(
        p_tdp_leak_w=30.0, alpha_w_per_k=0.45, t_tdp_c=90.0, areas_mm2=AREAS
    )


def test_eq6_at_reference_point(linear):
    """At T = T_TDP everywhere, total leakage = P_TDP_leak."""
    t = np.full(4, linear.t_tdp_k)
    assert linear.chip_total_w(t) == pytest.approx(30.0)


def test_eq6_area_distribution(linear):
    t = np.full(4, linear.t_tdp_k)
    per = linear.per_component_w(t)
    np.testing.assert_allclose(per, 30.0 * AREAS / AREAS.sum())


def test_eq6_slope(linear):
    t_hot = np.full(4, linear.t_tdp_k + 10.0)
    assert linear.chip_total_w(t_hot) == pytest.approx(30.0 + 4.5)
    t_cold = np.full(4, linear.t_tdp_k - 40.0)
    assert linear.chip_total_w(t_cold) == pytest.approx(30.0 - 18.0)


def test_eq6_per_component_temperature(linear):
    """Eq. (6) evaluates at each component's own temperature."""
    t = np.array([linear.t_tdp_k, linear.t_tdp_k + 20, linear.t_tdp_k,
                  linear.t_tdp_k])
    per = linear.per_component_w(t)
    frac = AREAS / AREAS.sum()
    assert per[1] == pytest.approx((30.0 + 0.45 * 20) * frac[1])
    assert per[0] == pytest.approx(30.0 * frac[0])


def test_leakage_never_negative(linear):
    t = np.full(4, linear.t_tdp_k - 500.0)
    assert np.all(linear.per_component_w(t) >= 0.0)


def test_linear_validation():
    with pytest.raises(ConfigurationError):
        LinearLeakage(0.0, 0.45, 90.0, AREAS)
    with pytest.raises(ConfigurationError):
        LinearLeakage(30.0, -0.1, 90.0, AREAS)
    with pytest.raises(ConfigurationError):
        LinearLeakage(30.0, 0.45, 90.0, np.array([1.0, -1.0]))


def test_quadratic_tangent_to_linear(linear):
    quad = QuadraticLeakage.fit_to_linear(linear, curvature_w_per_k2=0.004)
    t_ref = np.full(4, linear.t_tdp_k)
    assert quad.chip_total_w(t_ref) == pytest.approx(
        linear.chip_total_w(t_ref)
    )
    # Tangency: the quadratic dominates away from the reference point —
    # the model mismatch the controller faces.
    for dt in (-30.0, -10.0, 10.0):
        t = t_ref + dt
        assert quad.chip_total_w(t) >= linear.chip_total_w(t) - 1e-9


def test_quadratic_curvature_value(linear):
    quad = QuadraticLeakage.fit_to_linear(linear, curvature_w_per_k2=0.004)
    t = np.full(4, linear.t_tdp_k - 20.0)
    assert quad.chip_total_w(t) - linear.chip_total_w(t) == pytest.approx(
        0.004 * 400.0
    )


def test_quadratic_validation():
    with pytest.raises(ConfigurationError):
        QuadraticLeakage(0.0, 0.4, 0.004, 90.0, AREAS)
    with pytest.raises(ConfigurationError):
        QuadraticLeakage(30.0, 0.4, 0.004, 90.0, np.array([0.0, 1.0]))
