"""Open-system server workload: backlog, saturation, predictor."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.floorplan.chip import build_chip
from repro.power.dvfs import I7_DVFS
from repro.server.specjbb import DEFAULT_PERF_MODEL
from repro.server.trace_workload import (
    ServerIPSPredictor,
    ServerTraceRun,
    ServerWorkload,
)


@pytest.fixture(scope="module")
def chip():
    return build_chip(rows=2, cols=2)


def make_workload(demand):
    return ServerWorkload(
        name="t", demand=np.asarray(demand, dtype=float), peak_ips=6e9
    )


def test_validation(chip):
    with pytest.raises(WorkloadError):
        make_workload(np.ones(5))  # wrong ndim
    with pytest.raises(WorkloadError):
        make_workload(np.full((4, 10), 1.5))  # demand > 1
    with pytest.raises(WorkloadError):
        ServerWorkload(name="t", demand=np.zeros((2, 10)), peak_ips=0.0)
    # Core count must match the chip.
    wl = ServerWorkload(name="t", demand=np.zeros((2, 10)), peak_ips=6e9)
    with pytest.raises(WorkloadError):
        ServerTraceRun(wl, chip, 3.5)


def test_underloaded_serves_everything(chip):
    wl = make_workload(np.full((4, 10), 0.3))
    run = ServerTraceRun(wl, chip, 3.5)
    freqs = np.full(4, 3.5)
    total = 0.0
    while not run.finished:
        total += run.advance(1.0, freqs).sum()
    assert total == pytest.approx(wl.total_instructions, rel=1e-9)
    assert run.elapsed_s == pytest.approx(10.0)


def test_overload_builds_backlog_and_drains(chip):
    """Demand 1.0 at a frequency whose capacity is ~59%: backlog grows
    during the trace and drains afterwards, extending completion."""
    wl = make_workload(np.full((4, 10), 1.0))
    run = ServerTraceRun(wl, chip, 3.5)
    freqs = np.full(4, 1.6)
    for _ in range(10):
        run.advance(1.0, freqs)
    assert np.all(run.backlog > 0)
    assert not run.finished
    t_drain = run.time_to_completion_s(freqs)
    assert np.isfinite(t_drain) and t_drain > 0
    # Drain at full speed finishes everything.
    while not run.finished:
        run.advance(1.0, np.full(4, 3.5))
    assert run.progress == pytest.approx(1.0, abs=1e-6)


def test_activity_reflects_busy_fraction(chip):
    wl = make_workload(np.full((4, 10), 0.4))
    run = ServerTraceRun(wl, chip, 3.5)
    run.time_to_completion_s(np.full(4, 3.5))  # latches frequencies
    act = run.activity_vector()
    np.testing.assert_allclose(act, 0.4, atol=1e-6)
    # At a lower frequency the same demand is a larger busy fraction.
    run.time_to_completion_s(np.full(4, 1.6))
    act_lo = run.activity_vector()
    assert np.all(act_lo > act)


def test_time_to_completion_inf_while_arriving(chip):
    wl = make_workload(np.full((4, 10), 0.2))
    run = ServerTraceRun(wl, chip, 3.5)
    assert run.time_to_completion_s(np.full(4, 3.5)) == np.inf


def test_predictor_demand_capped():
    pred = ServerIPSPredictor(dvfs=I7_DVFS, peak_ips=6e9)
    # 30% utilization at max level: unsaturated -> demand = measured.
    pred.observe(np.full(4, 0.3 * 6e9), np.full(4, I7_DVFS.max_level))
    ips_max = pred.predict(np.full(4, I7_DVFS.max_level))
    ips_min = pred.predict(np.zeros(4, dtype=int))
    np.testing.assert_allclose(ips_max, 0.3 * 6e9)
    # Capacity at min level (~59%) still exceeds 30% demand.
    np.testing.assert_allclose(ips_min, 0.3 * 6e9)


def test_predictor_saturation_means_unbounded_demand():
    pred = ServerIPSPredictor(dvfs=I7_DVFS, peak_ips=6e9)
    cap_min = DEFAULT_PERF_MODEL.capacity_ips(1.6, 6e9)
    pred.observe(np.full(4, cap_min), np.zeros(4, dtype=int))
    hi = pred.predict(np.full(4, I7_DVFS.max_level))
    lo = pred.predict(np.zeros(4, dtype=int))
    assert np.all(hi > lo)  # raising gains predicted throughput


def test_predictor_batch_matches_scalar():
    pred = ServerIPSPredictor(dvfs=I7_DVFS, peak_ips=6e9)
    pred.observe(np.full(4, 0.5 * 6e9), np.full(4, I7_DVFS.max_level))
    levels = np.array([[0, 1, 2, 3], [5, 5, 5, 5]])
    batch = pred.predict_chip_batch(levels)
    assert batch[0] == pytest.approx(pred.predict(levels[0]).sum())
    assert batch[1] == pytest.approx(pred.predict(levels[1]).sum())


def test_predictor_before_observe():
    pred = ServerIPSPredictor(dvfs=I7_DVFS, peak_ips=6e9)
    assert not pred.ready
    with pytest.raises(WorkloadError):
        pred.predict(np.zeros(4, dtype=int))
