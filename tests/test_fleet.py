"""Fleet layer units: traces, shard plan, routers, policy, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParallelExecutionError, WorkloadError
from repro.fleet import (
    FleetConfig,
    clear_trace_cache,
    diurnal_utilization,
    fleet_demand,
    latency_quantile,
    make_router,
    trace_cache_size,
)
from repro.fleet.router import RouterView
from repro.fleet.sim import LATENCY_EDGES_S
from repro.obs import telemetry_session
from repro.parallel import plan_shards


# ----------------------------------------------------------------------
# Satellite: shard-plan helper (resolve_jobs x node-count interaction)
# ----------------------------------------------------------------------
@given(
    n_items=st.integers(min_value=0, max_value=5000),
    n_shards=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_plan_shards_partitions_exactly(n_items, n_shards):
    plan = plan_shards(n_items, n_shards)
    # Every index covered exactly once, in order, contiguously.
    covered = [i for a, b in plan for i in range(a, b)]
    assert covered == list(range(n_items))
    # No empty shards — an empty task would be dispatched for nothing.
    assert all(b > a for a, b in plan)
    # Balanced: sizes differ by at most one.
    if plan:
        sizes = [b - a for a, b in plan]
        assert max(sizes) - min(sizes) <= 1
        assert len(plan) == min(n_shards, n_items)


def test_plan_shards_rejects_bad_inputs():
    with pytest.raises(ParallelExecutionError):
        plan_shards(-1, 2)
    with pytest.raises(ParallelExecutionError):
        plan_shards(10, 0)


def test_plan_shards_indivisible_keeps_remainder():
    # 10 nodes over 4 workers: the naive 10//4=2 split loses 2 nodes.
    plan = plan_shards(10, 4)
    assert plan == [(0, 3), (3, 6), (6, 8), (8, 10)]


# ----------------------------------------------------------------------
# Satellite: trace cache
# ----------------------------------------------------------------------
def test_fleet_demand_cache_hits_counted():
    clear_trace_cache()
    with telemetry_session() as tel:
        a = fleet_demand("diurnal", 600, seed=7)
        assert tel.metrics.counter("server.trace_cache_hits").value == 0
        b = fleet_demand("diurnal", 600, seed=7)
        assert tel.metrics.counter("server.trace_cache_hits").value == 1
    assert a is b  # memoized object, not a recomputation
    assert not a.flags.writeable
    assert trace_cache_size() >= 1


def test_fleet_demand_key_includes_parameters():
    clear_trace_cache()
    a = fleet_demand("diurnal", 600, seed=7)
    b = fleet_demand("diurnal", 600, seed=8)
    c = fleet_demand("diurnal", 600, seed=7, scale=2.0)
    assert a is not b and a is not c
    assert not np.array_equal(a, b)


def test_fleet_demand_rejects_unknown_kind():
    with pytest.raises(WorkloadError):
        fleet_demand("nope", 600)


def test_diurnal_is_blockwise_constant_and_bounded():
    u = diurnal_utilization(3600, seed=3, block_s=60)
    assert u.shape == (3600,)
    assert np.all((u >= 0.0) & (u <= 1.0))
    blocks = u.reshape(-1, 60)
    assert np.all(blocks == blocks[:, :1])  # constant within each block
    assert len(np.unique(blocks[:, 0])) > 10  # but varies across blocks


def test_diurnal_scales_with_mean():
    lo = diurnal_utilization(86400, seed=3, mean_utilization=0.2)
    hi = diurnal_utilization(86400, seed=3, mean_utilization=0.6)
    assert lo.mean() < hi.mean()


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
def _view(n, backlog=None, peak=None, cap=None, thr=90.0):
    return RouterView(
        backlog_inst=np.zeros(n) if backlog is None else np.asarray(backlog),
        peak_temp_c=np.full(n, 60.0) if peak is None else np.asarray(peak),
        capacity_ips=np.full(n, 1e9) if cap is None else np.asarray(cap),
        t_threshold_c=thr,
    )


@pytest.mark.parametrize(
    "policy", ["identity", "round-robin", "least-loaded", "thermal"]
)
def test_routers_conserve_work(policy):
    router = make_router(policy, 7)
    shares = router.split(1e9, _view(7))
    assert shares.shape == (7,)
    assert np.all(shares >= 0.0)
    assert shares.sum() == pytest.approx(1e9, rel=1e-12)


def test_round_robin_rotates_remainder_deterministically():
    r1 = make_router("round-robin", 3)
    r2 = make_router("round-robin", 3)
    seq1 = [r1.split(300.0, _view(3)).copy() for _ in range(6)]
    seq2 = [r2.split(300.0, _view(3)).copy() for _ in range(6)]
    # Deterministic across instances...
    for a, b in zip(seq1, seq2):
        assert np.array_equal(a, b)
    # ...and fair over a full rotation.
    total = np.sum(seq1, axis=0)
    assert np.allclose(total, total[0])


def test_least_loaded_starves_backlogged_node():
    router = make_router("least-loaded", 3, dt_s=1.0)
    view = _view(3, backlog=[2e9, 0.0, 0.0], cap=[1e9, 1e9, 1e9])
    shares = router.split(6e8, view)
    assert shares[0] == 0.0
    assert shares[1] > 0 and shares[2] > 0


def test_thermal_router_prefers_cool_nodes():
    router = make_router("thermal", 2, dt_s=1.0)
    view = _view(2, peak=[89.0, 50.0], thr=90.0)
    shares = router.split(1e6, view)
    assert shares[1] > shares[0] > 0.0


# ----------------------------------------------------------------------
# Latency histogram
# ----------------------------------------------------------------------
def test_latency_quantile_edges():
    counts = np.zeros(len(LATENCY_EDGES_S), dtype=np.int64)
    assert latency_quantile(counts, 0.99) == 0.0
    counts[0] = 99
    counts[10] = 1
    assert latency_quantile(counts, 0.5) == 0.0
    assert latency_quantile(counts, 0.999) == float(LATENCY_EDGES_S[10])


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_fleet_config_validation():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        FleetConfig(n_nodes=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(duration_s=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(dt_s=2.0, fan_period_s=1.0)
