"""G-matrix assembly: structure, energy balance, TEC/fan deltas."""

import numpy as np
import pytest

from repro import units


@pytest.fixture()
def cond(system2):
    return system2.cond


def test_matrix_shape_and_pattern(cond):
    g = cond.matrix(1, np.zeros(cond.tec.n_devices))
    n = cond.n_nodes
    assert g.shape == (n, n)
    # Diagonal present everywhere.
    assert np.all(g.diagonal() != 0.0)


def test_base_matrix_symmetric(cond):
    """Without TEC pumping the network is reciprocal."""
    g0 = cond.base_matrix()
    d = (g0 - g0.T)
    assert abs(d).max() < 1e-12


def test_tec_on_makes_matrix_asymmetric(cond):
    tec = np.ones(cond.tec.n_devices)
    g = cond.matrix(1, tec)
    asym = abs((g - g.T)).max()
    assert asym > 0  # the a*I pumping terms are one-sided


def test_off_diagonals_nonpositive(cond):
    g = cond.matrix(2, np.zeros(cond.tec.n_devices)).toarray()
    off = g - np.diag(np.diag(g))
    assert off.max() <= 1e-12


def test_fan_level_changes_only_sink_diagonal(cond):
    z = np.zeros(cond.tec.n_devices)
    g1 = cond.matrix(1, z).toarray()
    g2 = cond.matrix(3, z).toarray()
    diff = g2 - g1
    nd = cond.nodes
    # Off-diagonal unchanged.
    assert np.allclose(diff - np.diag(np.diag(diff)), 0.0)
    # Only sink nodes affected.
    d = np.diag(diff)
    assert np.allclose(d[: nd.n_components + nd.n_tiles], 0.0)
    assert np.all(d[nd.sink_slice] < 0)  # slower fan -> less conductance


def test_tec_delta_signs(cond):
    """Pumping adds +aI on the covered components' diagonals and -aI on
    the hot-side spreader's diagonal (see repro.cooling.tec)."""
    nd = cond.nodes
    tec = np.zeros(cond.tec.n_devices)
    tec[0] = 1.0
    delta = cond.diag_delta(1, tec) - cond.diag_delta(1, np.zeros_like(tec))
    placement = cond.tec.placements[0]
    for ci, w in zip(placement.component_idx, placement.weights):
        assert delta[int(ci)] == pytest.approx(w * cond.tec.alpha_i)
    sp = nd.spreader_index(placement.tile)
    assert delta[sp] == pytest.approx(-cond.tec.alpha_i)


def test_rhs_contains_ambient_boundary(cond):
    nd = cond.nodes
    p = cond.rhs(np.zeros(nd.n_components), 1, np.zeros(cond.tec.n_devices))
    g_conv = cond.fan.convection_conductance_w_per_k(1)
    expected = g_conv / nd.n_tiles * cond.package.ambient_k
    np.testing.assert_allclose(p[nd.sink_slice], expected)


def test_rhs_tec_joule_split(cond):
    nd = cond.nodes
    tec = np.zeros(cond.tec.n_devices)
    tec[0] = 1.0
    p0 = cond.rhs(np.zeros(nd.n_components), 1, np.zeros_like(tec))
    p1 = cond.rhs(np.zeros(nd.n_components), 1, tec)
    extra = p1 - p0
    # Half the Joule heat lands on the die side, half on the spreader.
    assert extra[nd.component_slice].sum() == pytest.approx(
        0.5 * cond.tec.joule_w
    )
    assert extra[nd.spreader_slice].sum() == pytest.approx(
        0.5 * cond.tec.joule_w
    )


def test_global_energy_balance_tecs_off(system2):
    """At steady state, heat into ambient equals heat generated."""
    nd = system2.nodes
    p_comp = np.full(nd.n_components, 0.1)
    t = system2.solver.solve(p_comp, 1, np.zeros(system2.n_tec_devices))
    g_conv = system2.fan.convection_conductance_w_per_k(1)
    out = (g_conv / nd.n_tiles) * (
        t[nd.sink_slice] - system2.package.ambient_k
    )
    assert out.sum() == pytest.approx(p_comp.sum(), rel=1e-9)


def test_global_energy_balance_tecs_on(system2):
    """With TECs on, ambient outflow = component power + TEC electrical
    power (Eq. 9 consistency of the linearized Peltier model)."""
    nd = system2.nodes
    p_comp = np.full(nd.n_components, 0.1)
    tec = np.ones(system2.n_tec_devices)
    t = system2.solver.solve(p_comp, 1, tec)
    g_conv = system2.fan.convection_conductance_w_per_k(1)
    out = float(
        ((g_conv / nd.n_tiles) * (t[nd.sink_slice] - system2.package.ambient_k)).sum()
    )
    p_tec = system2.tec_power_w(tec, t)
    assert out == pytest.approx(float(p_comp.sum()) + p_tec, rel=1e-6)
