"""Parameter sweeps (TEC density, fan levels)."""

import numpy as np
import pytest

from repro.analysis.sweeps import (
    FanLevelPoint,
    fan_level_sweep,
    tec_density_sweep,
)


def test_fan_level_sweep_monotone(system2):
    points = fan_level_sweep(system2, core_activity=0.9)
    assert len(points) == system2.fan.n_levels
    temps = [p.peak_temp_c for p in points]
    fans = [p.fan_power_w for p in points]
    assert all(b > a for a, b in zip(temps, temps[1:]))  # slower = hotter
    assert all(b < a for a, b in zip(fans, fans[1:]))  # slower = cheaper


def test_fan_level_sweep_leakage_feedback(system2):
    """Chip power net of the fan rises at slow levels: the leakage
    penalty of running hot (the trade the fan loop walks)."""
    points = fan_level_sweep(system2, core_activity=0.9)
    net = [p.chip_power_w - p.fan_power_w for p in points]
    assert net[-1] > net[0]


@pytest.mark.slow
def test_tec_density_sweep_shape():
    """Denser arrays recover more of the fan deficit."""
    points = tec_density_sweep(grids=((1, 1), (3, 3)))
    assert [p.devices_per_core for p in points] == [1, 9]
    sparse, dense = points
    assert dense.peak_temp_c <= sparse.peak_temp_c + 0.3
    assert dense.violation_rate <= sparse.violation_rate + 1e-9
