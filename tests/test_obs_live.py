"""Live observability plane: status sidecar, watch/top, Prometheus.

The contracts under test (docs/OBSERVABILITY.md "Live monitoring"):

* the status sidecar is written atomically — a reader polling
  mid-rename always gets either the previous or the next *complete*
  snapshot, never a torn one, and sequence numbers never go backwards;
* enabling ``status_path`` on an engine run is side-effect-free: the
  result is bit-identical (``result_digest``) to the same run without;
* ``tecfan watch --once`` / ``tecfan top --once`` exit 0 against live
  and journal-resumed runs, exit 2 against a missing file;
* the Prometheus exposition renders counters/gauges/histograms in text
  format 0.0.4 and serves them over the ``--metrics-port`` thread.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.checkpoint import result_digest
from repro.cli import main
from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
from repro.core.problem import EnergyProblem
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.core.trace import TraceRecorder
from repro.exceptions import ConfigurationError, ObservabilityError
from repro.obs import Telemetry, telemetry_session
from repro.obs.live import (
    STATUS_SCHEMA,
    MetricsServer,
    PoolStatusReporter,
    RunStatusReporter,
    _Cadence,
    prometheus_text,
    read_status,
    render_status,
    render_top,
    render_watch,
    status_anomalies,
    write_status,
)
from repro.parallel import parallel_map
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun


# ----------------------------------------------------------------------
# Sidecar file: round trip, validation, atomicity
# ----------------------------------------------------------------------
def test_write_read_round_trip(tmp_path):
    path = tmp_path / "s.json"
    write_status(path, {"kind": "engine-run", "seq": 3, "done": False})
    status = read_status(path)
    assert status["schema"] == STATUS_SCHEMA
    assert status["kind"] == "engine-run"
    assert status["seq"] == 3


def test_read_missing_file_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="no status file"):
        read_status(tmp_path / "absent.json")


def test_read_rejects_non_json(tmp_path):
    path = tmp_path / "s.json"
    path.write_bytes(b"not json at all {")
    with pytest.raises(ObservabilityError, match="not valid JSON"):
        read_status(path)


def test_read_rejects_unknown_schema(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({"schema": 999, "kind": "engine-run"}))
    with pytest.raises(ObservabilityError, match="schema 999"):
        read_status(path)


def test_write_counts_snapshots(tmp_path):
    with telemetry_session() as tel:
        write_status(tmp_path / "s.json", {"kind": "pool"})
        counters = tel.metrics.snapshot()["counters"]
    assert counters["live.snapshots_written"] == 1
    assert counters["live.snapshot_bytes"] > 0


def test_concurrent_reads_never_torn(tmp_path):
    """A reader polling mid-rename sees only complete snapshots.

    The writer thread hammers ``write_status`` with increasing ``seq``
    and a payload whose checksum field must match its body; the reader
    polls as fast as it can. Every successful read must parse, carry a
    self-consistent payload, and have a seq no older than the last one
    observed (the tolerant-reader analogue of ``read_stream_parts``).
    """
    path = tmp_path / "s.json"
    n_writes = 300
    stop = threading.Event()
    errors: list[str] = []

    def writer():
        for seq in range(n_writes):
            body = "x" * (seq % 97)
            write_status(
                path,
                {"kind": "pool", "seq": seq, "body": body,
                 "body_len": len(body)},
            )
        stop.set()

    seen = []

    def reader():
        last = -1
        polling = True
        while polling:
            polling = not stop.is_set()  # one final read after the writer
            try:
                status = read_status(path)
            except ObservabilityError as exc:
                if "no status file" in str(exc):
                    continue  # writer has not created it yet
                errors.append(str(exc))
                break
            if status["body_len"] != len(status["body"]):
                errors.append(f"torn payload at seq {status['seq']}")
                break
            if status["seq"] < last:
                errors.append(
                    f"seq went backwards: {status['seq']} < {last}"
                )
                break
            last = status["seq"]
            seen.append(last)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert seen, "readers never observed a snapshot"


def test_cadence_first_call_due_then_throttled():
    c = _Cadence(10.0)
    assert c.due(0.0)
    c.advance(0.0)
    assert not c.due(9.99)
    assert c.due(10.0)
    with pytest.raises(ObservabilityError):
        _Cadence(0.0)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class _StubSystem:
    def component_temps_c(self, t_nodes):
        return np.asarray(t_nodes, dtype=float)


class _StubState:
    fan_level = 2


def _engine_reporter(path, **kw):
    kw.setdefault("every_s", 1.0)
    kw.setdefault("max_time_s", 1.0)
    kw.setdefault("t_threshold_c", 85.0)
    kw.setdefault("system", _StubSystem())
    return RunStatusReporter(path, workload="lu", policy="TECfan", **kw)


def _trace_with(rows):
    trace = TraceRecorder()
    for t, dt, peak, p in rows:
        trace.append(
            time_s=t, dt_s=dt, peak_temp_c=peak, p_chip_w=p,
            p_cores_w=p, p_tec_w=0.0, p_fan_w=0.0, ips_chip=1e9,
            tec_on=0, fan_level=2, mean_dvfs_level=0.0,
        )
    return trace


def test_run_reporter_snapshot_fields(tmp_path):
    path = tmp_path / "s.json"
    rep = _engine_reporter(path)
    trace = _trace_with([(0.0, 0.002, 80.0, 100.0), (0.002, 0.002, 81.0, 110.0)])
    assert rep.maybe_report(
        time_s=0.004, t_nodes=[79.0, 81.0], trace=trace, intervals=2,
        total_instructions=2e6, state=_StubState(),
    )
    status = read_status(path)
    assert status["kind"] == "engine-run"
    assert status["progress"]["sim_time_s"] == pytest.approx(0.004)
    assert status["progress"]["fraction"] == pytest.approx(0.004)
    assert status["thermal"]["peak_temp_c"] == pytest.approx(81.0)
    assert status["thermal"]["headroom_c"] == pytest.approx(4.0)
    assert status["thermal"]["run_peak_c"] == pytest.approx(81.0)
    # energy folds sum(P * dt) incrementally
    assert status["energy"]["energy_j"] == pytest.approx(
        100.0 * 0.002 + 110.0 * 0.002
    )
    assert status["energy"]["epi_j"] == pytest.approx(0.42 / 2e6)
    assert status["fan_level"] == 2
    assert len(status["history"]) == 1


def test_run_reporter_incremental_and_cadence(tmp_path):
    path = tmp_path / "s.json"
    rep = _engine_reporter(path, every_s=1000.0)
    trace = _trace_with([(0.0, 0.002, 80.0, 100.0)])
    assert rep.maybe_report(
        time_s=0.002, t_nodes=[80.0], trace=trace, intervals=1,
        total_instructions=1e6, state=_StubState(),
    )
    # not due again for 1000 s of wall time
    assert not rep.maybe_report(
        time_s=0.004, t_nodes=[80.0], trace=trace, intervals=2,
        total_instructions=2e6, state=_StubState(),
    )
    # force=True bypasses the cadence and folds only the NEW rows
    trace.append(
        time_s=0.002, dt_s=0.002, peak_temp_c=90.0, p_chip_w=200.0,
        p_cores_w=200.0, p_tec_w=0.0, p_fan_w=0.0, ips_chip=1e9,
        tec_on=0, fan_level=2, mean_dvfs_level=0.0,
    )
    assert rep.maybe_report(
        time_s=0.004, t_nodes=[80.0], trace=trace, intervals=2,
        total_instructions=2e6, state=_StubState(), done=True, force=True,
    )
    status = read_status(path)
    assert status["done"] is True
    assert status["progress"]["fraction"] == 1.0
    assert status["energy"]["energy_j"] == pytest.approx(
        100.0 * 0.002 + 200.0 * 0.002
    )
    assert status["thermal"]["run_peak_c"] == pytest.approx(90.0)


def test_run_reporter_eta_from_recent_throughput():
    rep = _engine_reporter("unused.json", max_time_s=10.0)
    rate, eta = rep._eta(100.0, 2.0)
    assert rate is None and eta is None
    rate, eta = rep._eta(101.0, 4.0)  # 2 sim-s per wall-s
    assert rate == pytest.approx(2.0)
    assert eta == pytest.approx((10.0 - 4.0) / 2.0)


def test_pool_reporter_snapshot_fields(tmp_path):
    path = tmp_path / "p.json"
    rep = PoolStatusReporter(
        path, every_s=1.0, total=6, meta={"label": "sweep"}
    )
    rep.note_replayed([0, 3])
    rep.index_map = [1, 2, 4, 5]
    rep.worker_dispatch(101, 0)   # sub-index 0 -> outer cell 1
    rep.worker_dispatch(102, 1)   # sub-index 1 -> outer cell 2
    rep.worker_reply(101)
    rep.note_success()
    rep.note_retry()
    rep.add_shm(4096)
    with telemetry_session() as tel:
        assert rep.maybe_report(in_flight=1, queued=2)
        counters = tel.metrics.snapshot()["counters"]
    assert counters["parallel.heartbeats"] == 1
    status = read_status(path)
    assert status["kind"] == "pool"
    tasks = status["tasks"]
    assert tasks == {
        "total": 6, "replayed": 2, "done": 1, "failed": 0, "retries": 1,
        "timeouts": 0, "in_flight": 1, "queued": 2,
    }
    assert status["replayed_indices"] == [0, 3]
    assert status["shm_bytes"] == 4096
    workers = {w["pid"]: w for w in status["workers"]}
    assert workers[101]["state"] == "idle"
    assert workers[101]["tasks_done"] == 1
    assert workers[102]["state"] == "busy"
    assert workers[102]["index"] == 2  # display-mapped outer cell
    rep.finish()
    assert read_status(path)["done"] is True


# ----------------------------------------------------------------------
# Renderers + anomaly reuse
# ----------------------------------------------------------------------
def _engine_status(**over):
    status = {
        "schema": STATUS_SCHEMA, "kind": "engine-run", "seq": 5,
        "pid": 42, "done": False, "workload": "lu", "policy": "TECfan",
        "t_threshold_c": 85.0,
        "progress": {"sim_time_s": 0.5, "max_time_s": 1.0,
                     "fraction": 0.5, "intervals": 250,
                     "rate_sim_per_wall": 0.1, "eta_s": 5.0},
        "thermal": {"peak_temp_c": 80.0, "run_peak_c": 82.0,
                    "t_threshold_c": 85.0, "headroom_c": 5.0,
                    "core_temps_c": [80.0]},
        "energy": {"energy_j": 50.0, "epi_j": 1e-9, "avg_power_w": 100.0},
        "cache": {"propagator_hit_rate": 0.9,
                  "fast_forward_fraction": 0.5},
        "checkpoint": {"path": "ck.pkl", "age_s": 1.5},
        "history": [
            {"time_s": i * 0.002, "peak_temp_c": 80.0, "p_chip_w": 100.0,
             "ips_chip": 1e9, "tec_on": 0, "fan_level": 2,
             "headroom_c": 5.0}
            for i in range(8)
        ],
    }
    status.update(over)
    return status


def test_render_watch_mentions_key_fields():
    text = render_watch(_engine_status())
    assert "lu / TECfan" in text
    assert "50.0%" in text
    assert "headroom +5.00" in text
    assert "propagator 90.0% hit" in text
    assert "fast-forwarded 50.0%" in text
    assert "checkpoint: ck.pkl" in text
    assert "anomalies: none detected" in text


def test_render_watch_flags_threshold_excursion():
    status = _engine_status(
        thermal={"peak_temp_c": 86.0, "run_peak_c": 86.0,
                 "t_threshold_c": 85.0, "headroom_c": -1.0,
                 "core_temps_c": [86.0]},
    )
    assert "OVER THRESHOLD" in render_watch(status)


def test_status_anomalies_reuses_tracetools_thresholds():
    # a history whose tail exceeds threshold + margin -> excursion
    hot = [
        {"time_s": i * 0.002, "peak_temp_c": 88.0, "p_chip_w": 100.0,
         "ips_chip": 1e9, "tec_on": 0, "fan_level": 2}
        for i in range(4)
    ]
    found = status_anomalies(_engine_status(history=hot))
    assert any(a.kind == "thermal_excursion" for a in found)
    assert status_anomalies(_engine_status(history=[])) == []


def test_render_top_mentions_workers_and_replays():
    status = {
        "schema": STATUS_SCHEMA, "kind": "pool", "seq": 2, "pid": 7,
        "done": False, "meta": {"label": "fan-sweep lu/TECfan",
                                "journal": "j.tfj"},
        "tasks": {"total": 6, "replayed": 2, "done": 1, "failed": 0,
                  "retries": 0, "timeouts": 0, "in_flight": 2,
                  "queued": 1},
        "progress": {"fraction": 0.5, "rate_per_s": 1.0, "eta_s": 3.0},
        "shm_bytes": 1 << 20,
        "workers": [{"pid": 101, "state": "busy", "index": 4,
                     "tasks_done": 1, "last_reply_age_s": 0.5}],
        "replayed_indices": [0, 3],
        "history": [{"done": 3}],
    }
    text = render_top(status)
    assert "fan-sweep lu/TECfan" in text
    assert "3/6 settled" in text
    assert "2 replayed" in text
    assert "101" in text
    assert "replayed cells: 0, 3" in text
    assert "journal: j.tfj" in text
    # render_status dispatches on kind
    assert render_status(status) == text
    assert "tecfan watch" in render_status(_engine_status())


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_text_format():
    snapshot = {
        "counters": {"engine.intervals": 10},
        "gauges": {"fan.level": 2.0},
        "histograms": {
            "thermal.solver_ms": {
                "edges": [1.0, 5.0], "counts": [3, 2], "count": 6,
                "total": 12.5, "mean": 2.08, "min": 0.1, "max": 9.0,
            }
        },
    }
    text = prometheus_text(snapshot, _engine_status())
    assert "# TYPE tecfan_engine_intervals_total counter" in text
    assert "tecfan_engine_intervals_total 10" in text
    assert "tecfan_fan_level 2" in text
    # cumulative buckets: 3, then 3+2, then +Inf = count
    assert 'tecfan_thermal_solver_ms_bucket{le="1"} 3' in text
    assert 'tecfan_thermal_solver_ms_bucket{le="5"} 5' in text
    assert 'tecfan_thermal_solver_ms_bucket{le="+Inf"} 6' in text
    assert "tecfan_thermal_solver_ms_sum 12.5" in text
    assert "tecfan_thermal_solver_ms_count 6" in text
    # live status gauges ride along
    assert "tecfan_live_up 1" in text
    assert "tecfan_live_progress_fraction 0.5" in text
    assert "tecfan_live_peak_temp_celsius 80" in text
    assert text.endswith("\n")


def test_prometheus_text_pool_gauges():
    status = {
        "kind": "pool", "done": True, "seq": 9,
        "progress": {"fraction": 1.0, "eta_s": 0.0},
        "tasks": {"total": 6, "done": 4, "failed": 0, "replayed": 2,
                  "in_flight": 0, "queued": 0},
        "workers": [], "shm_bytes": 123,
    }
    text = prometheus_text(None, status)
    assert "tecfan_pool_tasks_total 6" in text
    assert "tecfan_pool_tasks_replayed 2" in text
    assert "tecfan_pool_shm_bytes 123" in text
    assert "tecfan_live_done 1" in text


def test_metrics_server_scrapes_live_registry(tmp_path):
    tel = Telemetry()
    tel.metrics.counter("engine.intervals").inc(7)
    status_path = tmp_path / "s.json"
    write_status(status_path, _engine_status())
    server = MetricsServer(
        0, host="127.0.0.1", status_path=status_path,
        telemetry_getter=lambda: tel,
    )
    try:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert resp.status == 200
            assert "text/plain" in resp.headers["Content-Type"]
            body = resp.read().decode()
        assert "tecfan_engine_intervals_total 7" in body
        assert "tecfan_live_up 1" in body
        # mutation between scrapes is visible (live registry, no cache)
        tel.metrics.counter("engine.intervals").inc(3)
        with urllib.request.urlopen(url, timeout=10) as resp:
            assert "tecfan_engine_intervals_total 10" in resp.read().decode()
    finally:
        server.close()


# ----------------------------------------------------------------------
# Engine integration: no observer effect, snapshots on run + resume
# ----------------------------------------------------------------------
def _small_run(extra: dict):
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=0.02, **extra),
    )
    return engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ), TECfanController()
    )


def test_status_file_is_side_effect_free(tmp_path):
    baseline = _small_run({})
    path = tmp_path / "s.json"
    with_status = _small_run(
        {"status_path": str(path), "status_every_s": 0.001}
    )
    assert result_digest(baseline) == result_digest(with_status)
    status = read_status(path)
    assert status["done"] is True
    assert status["progress"]["fraction"] == 1.0
    assert status["workload"] == "lu"
    assert status["thermal"]["t_threshold_c"] == 70.0


def test_engine_config_rejects_bad_cadence():
    with pytest.raises(ConfigurationError):
        EngineConfig(status_every_s=0.0)


def test_fan_sweep_status_sidecar(tmp_path):
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=0.004),
    )
    path = tmp_path / "p.json"
    run_fan_sweep(
        engine,
        lambda: WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        TECfanController(),
        status_path=str(path),
        status_every_s=0.01,
    )
    status = read_status(path)
    assert status["kind"] == "pool"
    assert status["done"] is True
    assert status["tasks"]["done"] == status["tasks"]["total"] > 0
    assert "fan-sweep lu/TECfan" in status["meta"]["label"]


def test_parallel_map_journal_resume_reports_replayed(tmp_path):
    from repro.journal import TaskJournal

    jpath = tmp_path / "j.tfj"
    header = {"kind": "test", "n_tasks": 4}
    with TaskJournal(jpath, header=header) as journal:
        journal.record_task(0, 0.0)
        journal.record_task(2, 4.0)
    path = tmp_path / "p.json"
    with TaskJournal(jpath, header=header) as journal:
        out = parallel_map(
            _square, [0.0, 1.0, 2.0, 3.0], None,
            journal=journal,
            status_path=str(path),
            status_every_s=0.001,
        )
    assert out == [0.0, 1.0, 4.0, 9.0]
    status = read_status(path)
    assert status["done"] is True
    assert status["tasks"]["replayed"] == 2
    assert status["tasks"]["done"] == 2
    assert status["replayed_indices"] == [0, 2]


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# CLI: watch/top --once against live and resumed runs
# ----------------------------------------------------------------------
def test_cli_watch_once_missing_file(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "absent.json"), "--once"]) == 2
    assert "no status file" in capsys.readouterr().err


def test_cli_run_status_watch_once(tmp_path, capsys):
    path = tmp_path / "s.json"
    rc = main([
        "run", "--workload", "lu", "--threads", "4",
        "--max-time-s", "0.01", "--status-file", str(path),
        "--status-every-s", "0.001",
    ])
    assert rc == 0
    capsys.readouterr()
    assert main(["watch", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "100.0%" in out
    assert "[done]" in out


def test_cli_sweep_status_top_once_live_and_resumed(tmp_path, capsys):
    path = tmp_path / "p.json"
    jpath = tmp_path / "sweep.tfj"
    base = [
        "sweep", "--workload", "lu", "--threads", "4",
        "--max-time-s", "0.004", "--journal", str(jpath),
        "--status-file", str(path), "--status-every-s", "0.01",
    ]
    assert main(base) == 0
    capsys.readouterr()
    assert main(["top", str(path), "--once"]) == 0
    first = capsys.readouterr().out
    assert "0 replayed" in first
    # resumed: the journal replays every cell, no live work left
    assert main(base) == 0
    capsys.readouterr()
    assert main(["top", str(path), "--once"]) == 0
    resumed = capsys.readouterr().out
    assert "replayed cells:" in resumed
    assert "0 live" in resumed
