"""Fan model: levels, cubic power, convection scaling."""

import numpy as np
import pytest

from repro.cooling.datasheets import DYNATRON_R16_LEVELS, FanLevelSpec
from repro.cooling.fan import CONVECTION_EXPONENT, FanModel
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def fan():
    return FanModel()


def test_paper_fan_powers(fan):
    """Fig. 4(c): level 1 = 14.4 W, level 2 = 3.8 W."""
    assert fan.power_w(1) == pytest.approx(14.4)
    assert fan.power_w(2) == pytest.approx(3.8, abs=0.1)


def test_cubic_power_law(fan):
    """Fan power ~ rpm^3 (Patterson)."""
    for lv in range(1, fan.n_levels + 1):
        expected = 14.4 * (fan.rpm(lv) / fan.rpm(1)) ** 3
        assert fan.power_w(lv) == pytest.approx(expected, rel=1e-9)


def test_level_one_is_fastest(fan):
    rpms = [fan.rpm(lv) for lv in range(1, fan.n_levels + 1)]
    assert rpms == sorted(rpms, reverse=True)


def test_convection_resistance_monotone(fan):
    rs = [
        fan.convection_resistance_k_per_w(lv)
        for lv in range(1, fan.n_levels + 1)
    ]
    assert rs[0] == pytest.approx(fan.r_conv_at_max_k_per_w)
    assert all(b > a for a, b in zip(rs, rs[1:]))


def test_convection_scaling_exponent(fan):
    r1 = fan.convection_resistance_k_per_w(1)
    r2 = fan.convection_resistance_k_per_w(2)
    flow_ratio = fan.airflow_cfm(1) / fan.airflow_cfm(2)
    assert r2 / r1 == pytest.approx(flow_ratio**CONVECTION_EXPONENT)


def test_conductance_is_reciprocal(fan):
    for lv in range(1, fan.n_levels + 1):
        assert fan.convection_conductance_w_per_k(lv) == pytest.approx(
            1.0 / fan.convection_resistance_k_per_w(lv)
        )


def test_tables_match_scalars(fan):
    np.testing.assert_allclose(
        fan.power_table(),
        [fan.power_w(lv) for lv in range(1, fan.n_levels + 1)],
    )
    np.testing.assert_allclose(
        fan.conductance_table(),
        [
            fan.convection_conductance_w_per_k(lv)
            for lv in range(1, fan.n_levels + 1)
        ],
    )


def test_neighbour_levels(fan):
    assert fan.faster(1) is None
    assert fan.slower(fan.n_levels) is None
    assert fan.faster(3) == 2
    assert fan.slower(3) == 4


def test_invalid_level_rejected(fan):
    with pytest.raises(ConfigurationError):
        fan.power_w(0)
    with pytest.raises(ConfigurationError):
        fan.power_w(fan.n_levels + 1)


def test_bad_configuration_rejected():
    with pytest.raises(ConfigurationError):
        FanModel(r_conv_at_max_k_per_w=-1.0)
    backwards = tuple(reversed(DYNATRON_R16_LEVELS))
    with pytest.raises(ConfigurationError):
        FanModel(levels=backwards)
    with pytest.raises(ConfigurationError):
        FanModel(levels=())


def test_custom_level_table():
    levels = (
        FanLevelSpec(1, 5000, 30.0, 10.0),
        FanLevelSpec(2, 2500, 15.0, 1.25),
    )
    fan = FanModel(levels=levels, r_conv_at_max_k_per_w=0.2)
    assert fan.n_levels == 2
    assert fan.convection_resistance_k_per_w(2) == pytest.approx(
        0.2 * 2.0**CONVECTION_EXPONENT
    )
