"""Disabled-by-default contract: hooks record nothing without a session."""

import pytest

from repro.obs import (
    Telemetry,
    annotate,
    event,
    gauge,
    get_telemetry,
    incr,
    observe,
    set_telemetry,
    span,
    telemetry_session,
)
from repro.obs.telemetry import _NULL_SPAN


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert get_telemetry() is None, "a telemetry session leaked into tests"
    yield
    set_telemetry(None)


def test_hooks_are_noops_without_session():
    # None of these should raise or allocate state anywhere observable.
    with span("engine.step", hist_ms="engine.step_ms"):
        incr("engine.intervals")
        observe("thermal.solver_ms", 0.5)
        gauge("fan.level", 2.0)
        event("interval", time_s=0.0)
        annotate("key", "value")
    assert get_telemetry() is None


def test_disabled_span_is_shared_singleton():
    assert span("a") is _NULL_SPAN
    assert span("b") is _NULL_SPAN


def test_session_records_then_restores():
    tel = Telemetry()
    with telemetry_session(tel) as active:
        assert active is tel
        assert get_telemetry() is tel
        incr("engine.intervals", 3)
        with span("engine.step"):
            pass
    assert get_telemetry() is None
    snap = tel.snapshot()
    assert snap["counters"]["engine.intervals"] == 3
    assert snap["spans"]["engine.step"]["count"] == 1


def test_session_default_constructs_telemetry():
    with telemetry_session() as tel:
        assert isinstance(tel, Telemetry)
        assert get_telemetry() is tel
    assert get_telemetry() is None


def test_sessions_nest_and_restore_outer():
    outer, inner = Telemetry(), Telemetry()
    with telemetry_session(outer):
        incr("n")
        with telemetry_session(inner):
            assert get_telemetry() is inner
            incr("n")
        assert get_telemetry() is outer
        incr("n")
    assert outer.metrics.snapshot()["counters"]["n"] == 2
    assert inner.metrics.snapshot()["counters"]["n"] == 1


def test_events_recorded_only_inside_session():
    tel = Telemetry()
    event("orphan", x=1)  # no session: dropped silently
    with telemetry_session(tel):
        event("interval", time_s=0.25)
    assert len(tel.events) == 1
    rec = tel.events[0]
    assert rec["kind"] == "interval"
    assert rec["time_s"] == 0.25
    assert "t_rel_s" in rec


def test_record_events_false_discards_silently():
    # Opting out of event retention is not a "drop": the dropped counter
    # is reserved for hitting the MAX_EVENTS cap.
    tel = Telemetry(record_events=False)
    with telemetry_session(tel):
        event("interval", time_s=0.0)
    assert tel.events == []
    assert tel.events_dropped == 0


def test_max_events_drop_warns_once_and_counts(monkeypatch):
    monkeypatch.setattr("repro.obs.telemetry.MAX_EVENTS", 3)
    tel = Telemetry()
    with telemetry_session(tel):
        for i in range(3):
            event("interval", i=i)
        # the cap is hit: exactly one loud warning at drop onset ...
        with pytest.warns(RuntimeWarning, match="MAX_EVENTS=3 hit"):
            event("interval", i=3)
        # ... and further drops stay silent but keep counting
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            event("interval", i=4)
    assert len(tel.events) == 3
    assert tel.events_dropped == 2
    # the truncation survives into aggregates (and thus merges/exports)
    assert tel.metrics.snapshot()["counters"]["obs.events_dropped"] == 2


def test_events_dropped_reaches_manifest_aggregates(monkeypatch):
    from repro.obs import build_manifest

    monkeypatch.setattr("repro.obs.telemetry.MAX_EVENTS", 1)
    tel = Telemetry()
    with telemetry_session(tel):
        event("interval", i=0)
        with pytest.warns(RuntimeWarning):
            event("interval", i=1)
    manifest = build_manifest(tel)
    assert manifest["events_dropped"] == 1
    assert manifest["telemetry"]["counters"]["obs.events_dropped"] == 1
