"""Unit helpers and constants."""

import numpy as np
import pytest

from repro import units


def test_celsius_kelvin_roundtrip_scalar():
    assert units.k_to_c(units.c_to_k(85.0)) == pytest.approx(85.0)


def test_celsius_kelvin_roundtrip_array():
    t = np.array([0.0, 40.0, 90.0])
    np.testing.assert_allclose(units.k_to_c(units.c_to_k(t)), t)


def test_zero_celsius_is_27315():
    assert units.c_to_k(0.0) == pytest.approx(273.15)


def test_area_conversion():
    assert units.mm2_to_m2(1.0) == pytest.approx(1e-6)
    assert units.mm2_to_m2(9.36) == pytest.approx(9.36e-6)


def test_length_conversion():
    assert units.mm_to_m(2.6) == pytest.approx(0.0026)


def test_cfm_conversion():
    # 1 CFM = 0.000471947 m^3/s
    assert units.cfm_to_m3s(1.0) == pytest.approx(4.71947443e-4)


def test_material_constants_positive():
    for name in (
        "K_SILICON",
        "CV_SILICON",
        "K_COPPER",
        "CV_COPPER",
        "K_TIM",
        "CV_TIM",
        "K_BI2TE3",
    ):
        assert getattr(units, name) > 0


def test_silicon_conducts_better_than_tim():
    assert units.K_SILICON > units.K_TIM > units.K_BI2TE3
