"""SPECjbb quadratic performance model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.server.specjbb import DEFAULT_PERF_MODEL, QuadraticPerfModel


def test_normalized_at_reference():
    assert DEFAULT_PERF_MODEL.relative(3.5) == pytest.approx(1.0)


def test_saturating_shape():
    """Throughput gains flatten at the top: the last 0.3 GHz buys less
    than 5% — the headroom TECfan/Oracle harvest (Sec. V-E)."""
    m = DEFAULT_PERF_MODEL
    assert m.relative(3.2) > 0.95
    assert 0.5 < m.relative(1.6) < 0.7


def test_monotone_increasing():
    f = np.linspace(1.0, 3.5, 50)
    rel = DEFAULT_PERF_MODEL.relative(f)
    assert np.all(np.diff(rel) > 0)


def test_sublinear_vs_frequency():
    """perf(f)/f falls with f (quadratic term negative)."""
    m = DEFAULT_PERF_MODEL
    assert m.relative(3.5) / 3.5 < m.relative(1.6) / 1.6


def test_capacity_scales_with_peak():
    m = DEFAULT_PERF_MODEL
    assert m.capacity_ips(3.5, 6e9) == pytest.approx(6e9)
    assert m.capacity_ips(1.6, 6e9) == pytest.approx(6e9 * m.relative(1.6))


def test_validation():
    with pytest.raises(ConfigurationError):
        QuadraticPerfModel(a=0.5, b=0.1)  # convex -> not saturating
    with pytest.raises(ConfigurationError):
        QuadraticPerfModel(a=0.1, b=-0.05, f_ref_ghz=3.5)  # decreasing
    with pytest.raises(ConfigurationError):
        QuadraticPerfModel(f_ref_ghz=-1.0)
