"""DVFS tables: Eq. (7)/(11) scaling laws."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.power.dvfs import DVFSTable, I7_DVFS, PerCoreDVFS, SCC_DVFS


def test_scc_table_shape():
    assert SCC_DVFS.n_levels == 6
    assert SCC_DVFS.frequency_ghz(SCC_DVFS.max_level) == pytest.approx(2.0)
    assert SCC_DVFS.voltage_v(SCC_DVFS.max_level) == pytest.approx(1.10)


def test_i7_table_tops_at_3g5():
    assert I7_DVFS.frequency_ghz(I7_DVFS.max_level) == pytest.approx(3.5)


def test_dynamic_scale_normalized_at_top():
    assert SCC_DVFS.dynamic_scale(SCC_DVFS.max_level) == pytest.approx(1.0)
    scales = SCC_DVFS.dynamic_scale(np.arange(SCC_DVFS.n_levels))
    assert np.all(np.diff(scales) > 0)


def test_dynamic_ratio_eq7():
    """Eq. (7): P(k)/P(k-1) = (F(k)/F(k-1)) (V(k)/V(k-1))^2."""
    r = SCC_DVFS.dynamic_ratio(5, 0)
    f = SCC_DVFS.freq_ghz
    v = SCC_DVFS.vdd_v
    assert r == pytest.approx((f[0] / f[5]) * (v[0] / v[5]) ** 2)
    # Cubic-flavoured saving: bottom level well below half power.
    assert r < 0.5


def test_frequency_ratio_eq11():
    assert SCC_DVFS.frequency_ratio(5, 0) == pytest.approx(1.0 / 2.0)
    assert SCC_DVFS.frequency_ratio(0, 5) == pytest.approx(2.0)


def test_ratios_vectorized():
    lv_from = np.array([5, 5, 0])
    lv_to = np.array([5, 0, 5])
    r = SCC_DVFS.dynamic_ratio(lv_from, lv_to)
    assert r.shape == (3,)
    assert r[0] == pytest.approx(1.0)
    assert r[1] * r[2] == pytest.approx(1.0)


def test_ratio_inverse_consistency():
    assert SCC_DVFS.dynamic_ratio(2, 4) * SCC_DVFS.dynamic_ratio(
        4, 2
    ) == pytest.approx(1.0)


def test_bad_tables_rejected():
    with pytest.raises(ConfigurationError):
        DVFSTable(freq_ghz=(1.0,), vdd_v=(0.8,))
    with pytest.raises(ConfigurationError):
        DVFSTable(freq_ghz=(1.0, 0.9), vdd_v=(0.8, 0.9))  # descending f
    with pytest.raises(ConfigurationError):
        DVFSTable(freq_ghz=(1.0, 1.2), vdd_v=(0.9, 0.8))  # descending V
    with pytest.raises(ConfigurationError):
        DVFSTable(freq_ghz=(1.0, 1.2), vdd_v=(0.8,))  # length mismatch


def test_per_core_state_defaults_to_max():
    pc = PerCoreDVFS(table=SCC_DVFS, n_cores=4)
    assert np.all(pc.levels == SCC_DVFS.max_level)
    np.testing.assert_allclose(pc.frequencies_ghz(), 2.0)
    np.testing.assert_allclose(pc.dynamic_scales(), 1.0)


def test_per_core_set_level_bounds():
    pc = PerCoreDVFS(table=SCC_DVFS, n_cores=4)
    pc.set_level(2, 0)
    assert pc.levels[2] == 0
    with pytest.raises(ConfigurationError):
        pc.set_level(0, 99)


def test_per_core_bad_initial_levels():
    with pytest.raises(ConfigurationError):
        PerCoreDVFS(table=SCC_DVFS, n_cores=2, levels=np.array([0, 99]))
