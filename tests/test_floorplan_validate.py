"""Floorplan validation: overlaps, holes, isolation."""

import pytest

from repro.exceptions import FloorplanError
from repro.floorplan.chip import build_chip
from repro.floorplan.component import ComponentCategory, ComponentSpec
from repro.floorplan.validate import validate_floorplan


def test_default_floorplans_validate():
    for rows, cols in ((1, 2), (2, 2), (4, 4)):
        validate_floorplan(build_chip(rows=rows, cols=cols))


def _chip_from_specs(specs, w=2.0, h=2.0):
    return build_chip(
        rows=1, cols=1, tile_specs=tuple(specs),
        tile_width_mm=w, tile_height_mm=h,
    )


def test_overlap_detected():
    specs = [
        ComponentSpec("a", 0, 0, 1.5, 2.0, ComponentCategory.INT_LOGIC),
        ComponentSpec("b", 1.0, 0, 1.0, 2.0, ComponentCategory.FP_LOGIC),
    ]
    with pytest.raises(FloorplanError, match="overlap"):
        validate_floorplan(_chip_from_specs(specs))


def test_coverage_hole_detected():
    specs = [
        ComponentSpec("a", 0, 0, 1.0, 2.0, ComponentCategory.INT_LOGIC),
        ComponentSpec("b", 1.0, 0, 0.5, 2.0, ComponentCategory.FP_LOGIC),
    ]
    with pytest.raises(FloorplanError, match="covered area"):
        validate_floorplan(_chip_from_specs(specs))


def test_out_of_bounds_detected():
    specs = [
        ComponentSpec("a", 0, 0, 2.5, 2.0, ComponentCategory.INT_LOGIC),
    ]
    with pytest.raises(FloorplanError, match="escapes tile"):
        validate_floorplan(_chip_from_specs(specs))


def test_valid_two_block_tile_passes():
    specs = [
        ComponentSpec("a", 0, 0, 1.0, 2.0, ComponentCategory.INT_LOGIC),
        ComponentSpec("b", 1.0, 0, 1.0, 2.0, ComponentCategory.FP_LOGIC),
    ]
    validate_floorplan(_chip_from_specs(specs))
