"""The 18-component Alpha-21264-style tile (paper Fig. 3)."""

import pytest

from repro.floorplan.core_tile import (
    COMPONENT_NAMES,
    COMPONENTS_PER_TILE,
    CORE_TILE_SPECS,
    TILE_HEIGHT_MM,
    TILE_WIDTH_MM,
    spec_by_name,
    tile_area_mm2,
)


def test_paper_component_count():
    """Sec. III-E: 'we evaluate 18 processor components'."""
    assert COMPONENTS_PER_TILE == 18


def test_paper_tile_dimensions():
    """Fig. 3: 2.6 mm x 3.6 mm, half of the SCC dual-core tile."""
    assert TILE_WIDTH_MM == pytest.approx(2.6)
    assert TILE_HEIGHT_MM == pytest.approx(3.6)


def test_specs_tile_exactly():
    assert tile_area_mm2() == pytest.approx(2.6 * 3.6)


def test_expected_units_present():
    for unit in (
        "IntExec",
        "IntReg",
        "FPMul",
        "FPAdd",
        "Bpred",
        "ITB",
        "DTB",
        "Icache",
        "Dcache",
        "L2",
        "Router",
        "VReg",
    ):
        assert unit in COMPONENT_NAMES


def test_unique_names():
    assert len(set(COMPONENT_NAMES)) == len(COMPONENT_NAMES)


def test_specs_within_tile_bounds():
    for s in CORE_TILE_SPECS:
        assert 0 <= s.x and s.x + s.width <= TILE_WIDTH_MM + 1e-12
        assert 0 <= s.y and s.y + s.height <= TILE_HEIGHT_MM + 1e-12


def test_power_weights_positive():
    assert all(s.power_weight > 0 for s in CORE_TILE_SPECS)


def test_int_exec_is_the_densest_unit():
    """The integer ALU cluster carries the highest power density —
    that is where the hot spot forms."""
    weights = {s.name: s.power_weight for s in CORE_TILE_SPECS}
    assert weights["IntExec"] == max(weights.values())
    assert weights["L2"] == min(weights.values())


def test_spec_by_name():
    assert spec_by_name("Router").category.value == "router"
    with pytest.raises(KeyError):
        spec_by_name("DoesNotExist")
