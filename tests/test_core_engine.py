"""Simulation engine: loop mechanics, priming, accounting."""

import numpy as np
import pytest

from repro.core.baselines import FanOnlyController, FanTECController
from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.exceptions import ConfigurationError
from repro.perf.workload import Phase, Workload, WorkloadRun


def small_workload(chip, inst=4_000_000, noise=0.0):
    return Workload(
        name="unit",
        threads=chip.n_tiles,
        total_instructions=inst,
        ff_instructions=0,
        ipc_at_ref=0.5,
        activity=0.7,
        active_tiles=tuple(range(chip.n_tiles)),
        phases=(Phase(1.0),),
        activity_noise_sigma=noise,
    )


@pytest.fixture()
def engine(system2):
    return SimulationEngine(
        system2,
        EnergyProblem(t_threshold_c=100.0),
        EngineConfig(dt_lower_s=2e-3, max_time_s=1.0, priming_intervals=3),
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(dt_lower_s=0.0)
    with pytest.raises(ConfigurationError):
        EngineConfig(dt_lower_s=1.0, fan_period_s=0.5)


def test_run_completes_workload(engine, system2):
    wl = small_workload(system2.chip)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    assert res.metrics.instructions == pytest.approx(
        wl.total_instructions, rel=1e-6
    )
    # Analytic completion time: inst/thread / (ipc * f).
    expected = (wl.total_instructions / 2) / (0.5 * 2.0e9)
    assert res.metrics.execution_time_s == pytest.approx(expected, rel=1e-3)


def test_energy_is_power_integral(engine, system2):
    wl = small_workload(system2.chip)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    tr = res.trace
    assert res.metrics.energy_j == pytest.approx(
        float((tr.p_chip_w * tr.dt_s).sum())
    )
    assert res.metrics.average_power_w == pytest.approx(
        res.metrics.energy_j / res.metrics.execution_time_s
    )


def test_fractional_last_interval(engine, system2):
    """Delay must not be quantized to whole control periods."""
    wl = small_workload(system2.chip, inst=4_100_000)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    expected = (wl.total_instructions / 2) / (0.5 * 2.0e9)
    assert res.metrics.execution_time_s == pytest.approx(expected, rel=1e-6)
    assert res.trace.dt_s[-1] < engine.config.dt_lower_s


def test_chip_power_includes_fan_and_tec(engine, system2):
    wl = small_workload(system2.chip)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanTECController())
    tr = res.trace
    np.testing.assert_allclose(
        tr.p_chip_w, tr.p_cores_w + tr.p_tec_w + tr.p_fan_w
    )
    np.testing.assert_allclose(tr.p_fan_w, system2.fan.power_w(1))


def test_avg_outputs_exposed(engine, system2):
    wl = small_workload(system2.chip)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    assert res.avg_p_components_w.shape == (system2.nodes.n_components,)
    assert res.avg_tec.shape == (system2.n_tec_devices,)
    assert res.avg_p_components_w.sum() == pytest.approx(
        np.average(res.trace.p_cores_w, weights=res.trace.dt_s), rel=1e-6
    )


def test_priming_starts_converged(system2):
    """With priming, the recorded run must not show a cold-start ramp."""
    wl = small_workload(system2.chip, inst=40_000_000)  # ~10 intervals
    cfg = EngineConfig(dt_lower_s=2e-3, max_time_s=1.0, priming_intervals=10)
    engine = SimulationEngine(system2, EnergyProblem(t_threshold_c=100.0), cfg)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    peaks = res.trace.peak_temp_c
    assert abs(peaks[0] - peaks[4]) < 1.0  # flat from the first interval


def test_engine_honours_initial_fan_level(engine, system2):
    wl = small_workload(system2.chip)
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level,
        fan_level=3,
    )
    res = engine.run(
        WorkloadRun(wl, system2.chip, 2.0),
        FanOnlyController(),
        initial_state=state,
    )
    assert np.all(res.trace.fan_level == 3)


def test_tecfan_gets_banded_estimator(engine, system2):
    from repro.core.local_estimator import LocalBandedEstimator

    wl = small_workload(system2.chip)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), TECfanController())
    assert isinstance(res.estimator, LocalBandedEstimator)


def test_max_time_cap(system2):
    wl = small_workload(system2.chip, inst=10**12)  # would run ~1000 s
    cfg = EngineConfig(dt_lower_s=2e-3, max_time_s=0.02, priming_intervals=0)
    engine = SimulationEngine(system2, EnergyProblem(t_threshold_c=100.0), cfg)
    res = engine.run(WorkloadRun(wl, system2.chip, 2.0), FanOnlyController())
    assert res.metrics.execution_time_s <= 0.02 + 2e-3


def test_fan_sweep_selection(system2):
    """The sweep must pick a slower level than 1 when the policy holds
    the constraint there (minimum energy among qualifying levels)."""
    wl = small_workload(system2.chip)
    cfg = EngineConfig(dt_lower_s=2e-3, max_time_s=1.0, priming_intervals=3)
    # Generous threshold: every level qualifies -> slowest fan wins on
    # energy for a no-knob policy.
    engine = SimulationEngine(system2, EnergyProblem(t_threshold_c=120.0), cfg)
    chosen, sweep = run_fan_sweep(
        engine,
        lambda: WorkloadRun(wl, system2.chip, 2.0),
        FanOnlyController(),
    )
    assert len(sweep) == system2.fan.n_levels
    assert chosen.metrics.fan_level == system2.fan.n_levels
