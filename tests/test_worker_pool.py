"""Persistent worker-pool runtime: identity, resilience, warm reuse.

Worker functions live at module level: the spawn start method pickles
them by qualified name and re-imports this module in each child.
"""

from __future__ import annotations

import math
import os
import signal
import subprocess
import sys
import time

import numpy as np

from repro.analysis.faultmatrix import run_fault_matrix
from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
from repro.core.problem import EnergyProblem
from repro.core.system import build_system
from repro.journal import TaskJournal, scan_journal
from repro.obs import Telemetry, telemetry_session
from repro.parallel import TaskFailure, WorkerPool, parallel_map
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun

_TRACE_FIELDS = (
    "time_s",
    "dt_s",
    "peak_temp_c",
    "p_chip_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "tec_on",
    "fan_level",
    "mean_dvfs_level",
)


def assert_results_identical(a, b) -> None:
    """PR 3's bit-identity check: every trace field, metrics, state."""
    for fld in _TRACE_FIELDS:
        assert np.array_equal(
            getattr(a.trace, fld), getattr(b.trace, fld)
        ), fld
    assert a.metrics == b.metrics
    assert np.array_equal(a.final_state.tec, b.final_state.tec)
    assert np.array_equal(a.final_state.dvfs, b.final_state.dvfs)
    assert a.final_state.fan_level == b.final_state.fan_level


def _small_setup():
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=0.02),
    )
    return system, wl, engine


# ----------------------------------------------------------------------
# serial-vs-pool bit-identity (the drop-in-replacement contract)
# ----------------------------------------------------------------------
def test_fan_sweep_pool_bit_identical_to_serial():
    system, wl, engine = _small_setup()

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    chosen_s, sweep_s = run_fan_sweep(
        engine, make_run, FanTECController(), jobs=None
    )
    chosen_p, sweep_p = run_fan_sweep(
        engine, make_run, FanTECController(), jobs=2
    )
    assert_results_identical(chosen_s, chosen_p)
    assert sweep_s == sweep_p  # RunMetrics dataclasses, field for field


def _outcomes_equal(a, b) -> bool:
    if (a.scenario, a.hardened, a.crashed, a.error) != (
        b.scenario,
        b.hardened,
        b.crashed,
        b.error,
    ):
        return False
    if a.counters != b.counters:
        return False
    for fld in ("peak_temp_c", "excess_frac", "violation_rate", "energy_j"):
        x, y = getattr(a, fld), getattr(b, fld)
        if x != y and not (math.isnan(x) and math.isnan(y)):
            return False
    return True


def test_fault_matrix_pool_matches_serial():
    system = build_system(rows=2, cols=2)
    kwargs = dict(
        workload="lu",
        threads=4,
        max_time_s=0.1,
        t_fault_s=0.004,
        mission_scale=2,
    )
    serial = run_fault_matrix(system, jobs=None, **kwargs)
    pooled = run_fault_matrix(system, jobs=2, **kwargs)
    assert serial.t_threshold_c == pooled.t_threshold_c
    assert serial.hot_component == pooled.hot_component
    # reference + (4 scenarios x 2 variants - the rerun (none, raw)) = 8
    assert len(serial.outcomes) == len(pooled.outcomes) == 8
    for a, b in zip(serial.outcomes, pooled.outcomes):
        assert _outcomes_equal(a, b), (a.scenario, a.hardened)


# ----------------------------------------------------------------------
# resilience on the pool: timeout kill + worker replacement
# ----------------------------------------------------------------------
def _hang_or_square(payload):
    if payload == "hang":
        time.sleep(600.0)
    return payload * payload


def test_timeout_kills_task_and_replaces_worker():
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(
            _hang_or_square,
            [1, "hang", 2, 3, 4, 5],
            jobs=2,
            timeout_s=10.0,
            on_error="collect",
        )
    # The hung task settles as a timeout failure at its own index...
    failure = out[1]
    assert isinstance(failure, TaskFailure)
    assert failure.kind == "timeout"
    assert failure.attempts == 1
    assert not failure
    # ...and the pool replaced the killed worker: every other task —
    # including those queued behind the hang — still completed.
    assert out[0] == 1 and out[2:] == [4, 9, 16, 25]
    assert tel.metrics.counter("parallel.timeouts").value == 1
    assert tel.metrics.counter("parallel.pool_tasks").value == 6


# ----------------------------------------------------------------------
# warm context reuse + counters
# ----------------------------------------------------------------------
def _count_with_context(ctx, payload):
    # The shared context is a mutable list the worker keeps between
    # tasks: its growth is only visible if the *same* object is reused.
    ctx.append(payload)
    return len(ctx)


def test_context_object_is_reused_warm_across_tasks():
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(
            _count_with_context, list(range(6)), jobs=2, context=[]
        )
    # 6 tasks on 2 workers: some worker saw its context grow.
    assert max(out) > 1
    assert sum(out) >= 6
    # Every dispatch after a worker's first found the context installed.
    warm = tel.metrics.counter("parallel.worker_cache_warm_hits").value
    assert warm >= 6 - 2
    assert tel.metrics.counter("parallel.pool_tasks").value == 6


def _instrumented_task(x):
    from repro.obs import telemetry as obs

    obs.incr("task.calls")
    obs.incr("task.units", x)
    return x


def test_counter_conservation_with_warm_workers():
    # Counter totals must not depend on how tasks landed on (warm)
    # workers: jobs=2 over 8 tasks merges exactly the serial totals.
    def totals(jobs):
        tel = Telemetry()
        with telemetry_session(tel):
            parallel_map(_instrumented_task, list(range(8)), jobs=jobs)
        return {
            n: c.value
            for n, c in tel.metrics._counters.items()
            if not n.startswith("parallel.")
        }

    serial = totals(None)
    pooled = totals(2)
    assert serial == {"task.calls": 8, "task.units": 28}
    assert pooled == serial
    # And the merge provenance is intact: one capture per task.
    tel = Telemetry()
    with telemetry_session(tel):
        parallel_map(_instrumented_task, list(range(8)), jobs=2)
    assert tel.metrics.counter("parallel.worker_sessions").value == 8


# ----------------------------------------------------------------------
# shared-memory result transport
# ----------------------------------------------------------------------
def _big_trace(n):
    return np.arange(float(n)), {"n": n}


def test_bulk_results_ride_shared_memory():
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(_big_trace, [50_000, 60_000], jobs=2)
    for arr, meta in out:
        assert arr.shape == (meta["n"],)
        assert np.array_equal(arr, np.arange(float(meta["n"])))
        arr[0] = -1.0  # parent owns the memory: writable, no shm backing
    # 2 float64 arrays >= 64 KiB each moved out-of-band.
    assert tel.metrics.counter("parallel.shm_bytes").value >= 2 * 50_000 * 8


def _worker_pid(_payload):
    return os.getpid()


def test_pool_persists_workers_across_map_calls():
    with WorkerPool(2) as pool:
        pool.prime()
        first = set(pool.map(_worker_pid, list(range(8))))
        second = set(pool.map(_worker_pid, list(range(8))))
    assert first == second  # same processes served both batches
    assert len(first) <= 2


# ----------------------------------------------------------------------
# crash recovery: journaled fan-outs survive killed workers and drivers
# ----------------------------------------------------------------------
def _die_if_marker(task):
    x, marker = task
    if x == 3 and os.path.exists(marker):
        os.unlink(marker)
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def test_worker_sigkill_then_journal_resume_completes(tmp_path):
    marker = tmp_path / "die-once"
    marker.write_text("armed")
    journal_path = tmp_path / "batch.tfj"
    payloads = [(x, str(marker)) for x in range(6)]

    # First attempt: the worker holding task 3 SIGKILLs itself mid-task.
    # Completed siblings land in the journal; the dead task does not
    # (only successes are ever journaled).
    with TaskJournal(journal_path, header={"kind": "sq"}) as j:
        out = parallel_map(
            _die_if_marker, payloads, jobs=2, journal=j,
            on_error="collect",
        )
    failed = [i for i, r in enumerate(out) if isinstance(r, TaskFailure)]
    assert failed == [3]
    assert out[3].kind == "died"
    _, _, tasks, _ = scan_journal(journal_path)
    assert set(tasks) == {0, 1, 2, 4, 5}

    # Resume (marker consumed): only the missing cell re-executes, and
    # the merged results equal a clean run's.
    tel = Telemetry()
    with telemetry_session(tel):
        with TaskJournal(journal_path, header={"kind": "sq"}) as j:
            out = parallel_map(_die_if_marker, payloads, jobs=2, journal=j)
    assert out == [x * x for x in range(6)]
    assert tel.metrics.counter("journal.tasks_skipped").value == 5
    assert tel.metrics.counter("journal.tasks_recorded").value == 1


_MATRIX_KWARGS = dict(
    workload="lu",
    threads=4,
    max_time_s=0.1,
    t_fault_s=0.004,
    mission_scale=2,
)

_MATRIX_DRIVER = """
import sys
from repro.analysis.faultmatrix import run_fault_matrix
from repro.core.system import build_system

run_fault_matrix(
    build_system(rows=2, cols=2),
    workload="lu", threads=4, max_time_s=0.1, t_fault_s=0.004,
    mission_scale=2, jobs=2, journal_path=sys.argv[1],
)
"""


def test_driver_sigkill_mid_fault_matrix_resumes_bit_identical(tmp_path):
    journal_path = tmp_path / "matrix.tfj"
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _MATRIX_DRIVER, str(journal_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Poll the journal read-only until at least one cell landed, then
    # SIGKILL the whole driver (its pool workers are daemonic and die
    # with it).
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break  # driver finished before we got to kill it: still fine
        try:
            _, _, tasks, _ = scan_journal(journal_path)
        except FileNotFoundError:
            tasks = {}
        if tasks:
            break
        time.sleep(0.05)
    proc.kill()
    proc.wait()

    system = build_system(rows=2, cols=2)
    clean = run_fault_matrix(system, jobs=2, **_MATRIX_KWARGS)
    tel = Telemetry()
    with telemetry_session(tel):
        resumed = run_fault_matrix(
            system, jobs=2, journal_path=journal_path, **_MATRIX_KWARGS
        )
    # The killed driver journaled at least one cell; the resume skipped
    # it rather than re-running.
    assert tel.metrics.counter("journal.tasks_skipped").value >= 1
    assert resumed.t_threshold_c == clean.t_threshold_c
    assert resumed.hot_component == clean.hot_component
    assert len(resumed.outcomes) == len(clean.outcomes)
    for a, b in zip(clean.outcomes, resumed.outcomes):
        assert _outcomes_equal(a, b), (a.scenario, a.hardened)


# ----------------------------------------------------------------------
# shared-memory leak windows: retire and close reclaim unread results
# ----------------------------------------------------------------------
def test_retire_reclaims_unread_shm_result():
    tel = Telemetry()
    with telemetry_session(tel):
        with WorkerPool(2) as pool:
            pool._ensure_workers(1)
            worker = pool._idle[0]
            # Bypass map(): park a completed bulk result in the pipe,
            # unread — the window where a parent crash used to strand
            # the segment.
            worker.conn.send(("task", 0, _big_trace, 70_000, None, False))
            assert worker.conn.poll(30.0)
            pool._retire(worker, kill=True)
    assert tel.metrics.counter("parallel.shm_leaks_reclaimed").value == 1


def _sleep_long(seconds):
    time.sleep(seconds)
    return seconds


def test_close_reclaims_busy_workers_and_is_idempotent():
    tel = Telemetry()
    with telemetry_session(tel):
        pool = WorkerPool(2)
        pool.prime()
        procs = [w.proc for w in pool._idle + pool._busy]
        assert procs
        # Park a worker mid-task so close() exercises the kill path —
        # the state a mid-sweep KeyboardInterrupt leaves behind.
        worker = pool._idle.pop(0)
        pool._busy.append(worker)
        worker.conn.send(("task", 99, _sleep_long, 600.0, None, False))
        pool.close()
        pool.close()  # idempotent: second call is a no-op
    assert pool.n_workers == 0
    assert all(not p.is_alive() for p in procs)
    assert all(w.conn.closed for w in [worker])
