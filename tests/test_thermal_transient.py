"""Transient integrators: Eq. (5) semantics and exact cross-check."""

import numpy as np
import pytest

from repro.exceptions import ThermalModelError
from repro.thermal.transient import ExactTransient


def zeros_tec(system):
    return np.zeros(system.n_tec_devices)


def test_betas_in_unit_interval(system2):
    beta = system2.transient.betas(2e-3, 1, zeros_tec(system2))
    assert np.all(beta > 0) and np.all(beta < 1)


def test_die_faster_than_sink(system2):
    """Sec. III-D's premise: die nodes react in ms, the sink in tens of
    seconds — i.e. die beta << sink beta at the 2 ms period."""
    nd = system2.nodes
    beta = system2.transient.betas(2e-3, 1, zeros_tec(system2))
    assert beta[nd.component_slice].mean() < 0.9
    assert np.all(beta[nd.sink_slice] > 0.999)


def test_step_interpolates_toward_steady(system2):
    nd = system2.nodes
    t0 = system2.uniform_initial_temps_k()
    p = np.full(nd.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    t1 = system2.transient.step(t0, ts, 2e-3, 1, zeros_tec(system2))
    # Strictly between the start and the steady state (elementwise).
    assert np.all(t1 >= np.minimum(t0, ts) - 1e-12)
    assert np.all(t1 <= np.maximum(t0, ts) + 1e-12)


def test_long_step_reaches_steady(system2):
    nd = system2.nodes
    t0 = system2.uniform_initial_temps_k()
    p = np.full(nd.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    t = t0
    for _ in range(20):
        t = system2.transient.step(t, ts, 30.0, 1, zeros_tec(system2))
    np.testing.assert_allclose(t, ts, atol=0.05)


def test_steady_state_is_fixed_point(system2):
    p = np.full(system2.nodes.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    t1 = system2.transient.step(ts, ts, 2e-3, 1, zeros_tec(system2))
    np.testing.assert_allclose(t1, ts, rtol=1e-12)


def test_nonpositive_dt_rejected(system2):
    p = np.full(system2.nodes.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    with pytest.raises(ThermalModelError):
        system2.transient.step(ts, ts, 0.0, 1, zeros_tec(system2))


def test_exact_matches_paper_at_steady_fixed_point(system2):
    exact = ExactTransient(system2.cond)
    p = np.full(system2.nodes.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    t1 = exact.step(ts, ts, 1e-2, 1, zeros_tec(system2))
    np.testing.assert_allclose(t1, ts, atol=1e-9)


def test_exact_time_constants_span_paper_scales(system2):
    """Sub-ms die modes through >5 s sink modes (Sec. III-D)."""
    exact = ExactTransient(system2.cond)
    taus = exact.time_constants_s(1, zeros_tec(system2))
    assert taus[0] < 5e-3
    assert taus[-1] > 5.0
    assert np.all(np.diff(taus) >= -1e-12)


def test_exact_all_modes_decay(system2):
    exact = ExactTransient(system2.cond)
    taus = exact.time_constants_s(3, np.ones(system2.n_tec_devices))
    assert np.all(taus > 0)


def test_eq4_interpolation_matches_eq5_discretization(system2):
    """Eq. (4) at t = k*dt equals k applications of Eq. (5)."""
    p = np.full(system2.nodes.n_components, 0.2)
    tec = zeros_tec(system2)
    ts = system2.solver.solve(p, 1, tec)
    t0 = system2.uniform_initial_temps_k() + 3.0
    dt = 2e-3
    stepped = t0
    for _ in range(5):
        stepped = system2.transient.step(stepped, ts, dt, 1, tec)
    curve = system2.transient.interpolate(
        t0, ts, np.array([5 * dt]), 1, tec
    )
    np.testing.assert_allclose(curve[0], stepped, rtol=1e-10)


def test_eq4_interpolation_endpoints(system2):
    p = np.full(system2.nodes.n_components, 0.2)
    tec = zeros_tec(system2)
    ts = system2.solver.solve(p, 1, tec)
    t0 = system2.uniform_initial_temps_k()
    curve = system2.transient.interpolate(
        t0, ts, np.array([0.0, 1e4]), 1, tec
    )
    np.testing.assert_allclose(curve[0], t0)
    np.testing.assert_allclose(curve[1], ts, atol=1e-6)


def test_eq4_rejects_negative_times(system2):
    p = np.full(system2.nodes.n_components, 0.2)
    ts = system2.solver.solve(p, 1, zeros_tec(system2))
    with pytest.raises(ThermalModelError):
        system2.transient.interpolate(
            ts, ts, np.array([-1.0]), 1, zeros_tec(system2)
        )
