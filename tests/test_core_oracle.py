"""Exhaustive optimizers: Oracle / Oracle-P / OFTEC."""

import numpy as np
import pytest

from repro.core.estimator import NextIntervalEstimator
from repro.core.oracle import ExhaustiveSearcher, make_oftec, make_oracle
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.exceptions import ConfigurationError
from repro.perf.ips import IPSTracker
from repro.server.trace_workload import ServerIPSPredictor


class BatchIPSTracker(IPSTracker):
    """IPSTracker with the batch API the searcher needs."""

    def predict_chip_batch(self, levels):
        freqs = self.dvfs.frequency_ghz(np.asarray(levels, dtype=int))
        ref = self.dvfs.frequency_ghz(self._levels_prev)
        return (self._ips_prev[None, :] * freqs / ref[None, :]).sum(axis=1)


@pytest.fixture()
def primed(system2, base_state2):
    est = NextIntervalEstimator(
        system=system2, ips_predictor=BatchIPSTracker(system2.dvfs)
    )
    n = system2.nodes.n_components
    est.begin_interval(
        np.full(n, 70.0),
        np.full(n, 0.15),
        np.full(system2.n_cores, 1.2e9),
        base_state2,
        1.0,
    )
    return est


def decide(searcher, estimator, state, threshold):
    problem = EnergyProblem(t_threshold_c=threshold)
    temps = np.full(
        estimator.system.nodes.n_components, 70.0
    )
    return searcher.decide(state, temps, estimator, problem)


def test_factory_names():
    assert make_oracle().name == "Oracle"
    assert make_oracle(perf_floor=np.array([1.0])).name == "Oracle-P"
    assert make_oftec().name == "OFTEC"


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        ExhaustiveSearcher(objective="nonsense")
    with pytest.raises(ConfigurationError):
        ExhaustiveSearcher(tec_gangs_per_core=0)


def test_oftec_keeps_dvfs_at_max(primed, base_state2, system2):
    oftec = make_oftec()
    out = decide(oftec, primed, base_state2, threshold=90.0)
    assert np.all(out.dvfs == system2.dvfs.max_level)


def test_oftec_picks_cheapest_feasible_cooling(primed, base_state2):
    """With a loose threshold OFTEC must pick the slowest fan, no TECs
    (that is the cooling-power minimum)."""
    oftec = make_oftec()
    out = decide(oftec, primed, base_state2, threshold=120.0)
    assert out.fan_level == primed.system.fan.n_levels
    assert out.tec_on_count == 0


def test_oracle_feasibility_respected(primed, base_state2, system2):
    oracle = make_oracle()
    oracle.decision_period = 1
    out = decide(oracle, primed, base_state2, threshold=85.0)
    # Verify with the full estimator that Oracle's pick is feasible.
    e = primed.evaluate(out)
    assert e.peak_temp_c <= 85.0 + 1.5  # model-vs-check slack


def test_oracle_beats_oftec_on_epi(primed, base_state2):
    """Oracle optimizes the full EPI objective and can only do better."""
    oracle = make_oracle()
    oracle.decision_period = 1
    oftec = make_oftec()
    th = 100.0
    out_oracle = decide(oracle, primed, base_state2, th)
    out_oftec = decide(oftec, primed, base_state2, th)
    e_oracle = primed.evaluate(out_oracle)
    e_oftec = primed.evaluate(out_oftec)
    assert e_oracle.epi <= e_oftec.epi + 1e-12


def test_decision_period_holds_configuration(primed, base_state2):
    oracle = make_oracle()
    oracle.decision_period = 5
    first = decide(oracle, primed, base_state2, 100.0)
    n_cfg = oracle.n_configurations
    held = decide(oracle, primed, base_state2, 100.0)
    assert held is first  # returned without recomputation
    assert oracle.n_configurations == n_cfg


def test_configuration_count_accounting(primed, base_state2, system2):
    oracle = make_oracle()
    oracle.decision_period = 1
    decide(oracle, primed, base_state2, 100.0)
    m = system2.dvfs.n_levels
    n = system2.n_cores
    expected = (2**n * system2.fan.n_levels) * (m**n)
    assert oracle.n_configurations == expected


def test_gang_explosion_guard(system4):
    searcher = ExhaustiveSearcher(tec_gangs_per_core=9)
    with pytest.raises(ConfigurationError, match="intractable"):
        searcher._prepare(system4)


def test_oracle_p_floor_binds(primed, base_state2, system2):
    """A high performance floor must forbid deep throttling."""
    ips_full = 2 * 1.2e9
    oracle_p = make_oracle(perf_floor=np.array([ips_full * 0.999]))
    oracle_p.decision_period = 1
    out = decide(oracle_p, primed, base_state2, threshold=110.0)
    # Eq. (11): full IPS requires every core at max frequency.
    assert np.all(out.dvfs == system2.dvfs.max_level)


def test_unconstrained_oracle_throttles(primed, base_state2, system2):
    """Same setting without the floor: EPI optimum is below max DVFS
    (the mesh-domain constant makes the optimum interior, but for a
    closed workload EPI always improves below the top level)."""
    oracle = make_oracle()
    oracle.decision_period = 1
    out = decide(oracle, primed, base_state2, threshold=110.0)
    assert np.any(out.dvfs < system2.dvfs.max_level)
