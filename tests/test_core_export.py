"""Trace/metrics export utilities."""

import csv
import io
import json

import pytest

from repro.core.export import (
    TRACE_COLUMNS,
    metrics_to_dict,
    metrics_to_json,
    trace_to_csv,
    trace_to_rows,
)
from repro.core.metrics import RunMetrics
from repro.core.trace import TraceRecorder


@pytest.fixture()
def trace():
    tr = TraceRecorder()
    for i in range(3):
        tr.append(
            time_s=i * 2e-3,
            dt_s=2e-3,
            peak_temp_c=80.0 + i,
            p_chip_w=100.0,
            p_cores_w=85.0,
            p_tec_w=0.6,
            p_fan_w=14.4,
            ips_chip=1e9,
            tec_on=i,
            fan_level=2,
            mean_dvfs_level=5.0,
        )
    return tr


@pytest.fixture()
def metrics():
    return RunMetrics(
        policy="TECfan",
        workload="lu",
        fan_level=2,
        execution_time_s=0.02,
        average_power_w=100.0,
        energy_j=2.0,
        peak_temp_c=85.0,
        violation_rate=0.01,
        instructions=4e8,
    )


def test_rows_roundtrip(trace):
    rows = trace_to_rows(trace)
    assert len(rows) == 3
    assert rows[1]["peak_temp_c"] == 81.0
    assert set(rows[0]) == set(TRACE_COLUMNS)


def test_csv_parses_back(trace, tmp_path):
    path = tmp_path / "trace.csv"
    text = trace_to_csv(trace, path)
    assert path.read_text() == text
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 3
    assert float(parsed[2]["peak_temp_c"]) == 82.0
    assert list(parsed[0]) == list(TRACE_COLUMNS)


def test_metrics_dict_derived_fields(metrics):
    d = metrics_to_dict(metrics)
    assert d["edp"] == pytest.approx(2.0 * 0.02)
    assert d["epi"] == pytest.approx(2.0 / 4e8)
    assert d["policy"] == "TECfan"


def test_metrics_json_roundtrip(metrics, tmp_path):
    path = tmp_path / "metrics.json"
    text = metrics_to_json(metrics, path)
    parsed = json.loads(path.read_text())
    assert parsed == json.loads(text)
    assert parsed["workload"] == "lu"
