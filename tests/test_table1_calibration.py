"""Full Table I regeneration (slow; the tight-tolerance gate).

The benchmark harness prints these rows; this test pins the calibration
so an accidental model change that drifts the base scenario fails CI.
"""

import pytest

from repro.analysis.experiments import run_base_scenario
from repro.perf.splash2 import TABLE1_CASES, table1_row


@pytest.mark.slow
@pytest.mark.parametrize("workload,threads", TABLE1_CASES)
def test_base_scenario_row(system16, workload, threads):
    base = run_base_scenario(system16, workload, threads)
    row = table1_row(workload, threads)
    assert base.time_ms == pytest.approx(row.time_ms, rel=0.01)
    assert base.processor_power_w == pytest.approx(row.power_w, abs=1.0)
    assert base.t_threshold_c == pytest.approx(row.peak_temp_c, abs=1.0)
