"""Temperature sensor bank: quantization, clipping, noise."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.thermal.sensors import TemperatureSensorBank


def test_default_8bit_step():
    bank = TemperatureSensorBank()
    assert bank.step_c == pytest.approx(127.5 / 255)  # = 0.5 degC


def test_quantization_grid():
    bank = TemperatureSensorBank()
    t = np.array([70.12, 70.26, 89.99])
    read = bank.read_c(t)
    np.testing.assert_allclose(read % bank.step_c, 0.0, atol=1e-9)
    np.testing.assert_allclose(read, t, atol=bank.step_c / 2 + 1e-9)


def test_noise_free_is_deterministic():
    bank = TemperatureSensorBank()
    t = np.linspace(40, 100, 7)
    np.testing.assert_array_equal(bank.read_c(t), bank.read_c(t))


def test_clipping_to_range():
    bank = TemperatureSensorBank(range_c=(0.0, 100.0), bits=8)
    read = bank.read_c(np.array([-20.0, 150.0]))
    assert read[0] == pytest.approx(0.0)
    assert read[1] == pytest.approx(100.0)


def test_noise_is_reproducible_per_seed():
    a = TemperatureSensorBank(noise_sigma_c=0.5, seed=42)
    b = TemperatureSensorBank(noise_sigma_c=0.5, seed=42)
    t = np.full(100, 70.0)
    np.testing.assert_array_equal(a.read_c(t), b.read_c(t))


def test_noise_magnitude_plausible():
    bank = TemperatureSensorBank(noise_sigma_c=0.5, seed=1, bits=12)
    t = np.full(10000, 70.0)
    read = bank.read_c(t)
    assert abs(read.mean() - 70.0) < 0.05
    assert 0.4 < read.std() < 0.6


def test_pickled_clone_continues_the_noise_stream():
    # Spawn workers receive the bank by pickle; their readings must
    # match what the parent would have produced from the same point.
    import pickle

    bank = TemperatureSensorBank(noise_sigma_c=0.5, seed=3)
    t = np.full(64, 70.0)
    bank.read_c(t)  # advance the stream past its seed state
    clone = pickle.loads(pickle.dumps(bank))
    np.testing.assert_array_equal(clone.read_c(t), bank.read_c(t))
    np.testing.assert_array_equal(clone.read_c(t), bank.read_c(t))


def test_pickle_round_trip_in_spawn_worker():
    # End to end through a real spawn boundary: the child continues the
    # parent's stream, not a reseeded one.
    import multiprocessing as mp
    import pickle

    bank = TemperatureSensorBank(noise_sigma_c=0.5, seed=9)
    t = np.full(16, 70.0)
    bank.read_c(t)
    expected = pickle.loads(pickle.dumps(bank)).read_c(t)
    ctx = mp.get_context("spawn")
    with ctx.Pool(1) as pool:
        got = pool.apply(_read_in_worker, (bank,))
    np.testing.assert_array_equal(got, expected)


def _read_in_worker(bank):
    return bank.read_c(np.full(16, 70.0))


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        TemperatureSensorBank(range_c=(100.0, 0.0))
    with pytest.raises(ConfigurationError):
        TemperatureSensorBank(bits=0)
    with pytest.raises(ConfigurationError):
        TemperatureSensorBank(bits=17)
    with pytest.raises(ConfigurationError):
        TemperatureSensorBank(noise_sigma_c=-1.0)
