"""Interval-kernel fast path: caches, Woodbury, fast-forwarding.

The non-negotiable invariants under test (docs/PERFORMANCE.md):

* cache hits are bit-identical to the uncached computation;
* fast-forwarded k-interval steps match k sequential ``PaperTransient``
  steps within 1e-9 K and reproduce the classic path's controller
  decisions exactly;
* Woodbury-corrected solves agree with full refactorization within the
  configured residual tolerance, and failed corrections fall back to
  the exact path bit-for-bit;
* the forced-exact ``EngineConfig`` switch — and any hardened run —
  is bit-identical to the classic engine, field by field.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.exceptions import ConfigurationError
from repro.faults import FaultScheduler
from repro.obs import Telemetry, telemetry_session
from repro.perf.workload import Workload, WorkloadRun
from repro.thermal.keys import (
    ActuatorKeyer,
    PropagatorCache,
    exact_actuator_key,
    tec_key,
)
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import ExactTransient, PaperTransient

TRACE_FIELDS = (
    "time_s",
    "dt_s",
    "peak_temp_c",
    "p_chip_w",
    "p_cores_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "tec_on",
    "fan_level",
    "mean_dvfs_level",
)


def quiescent_workload(n_tiles: int) -> Workload:
    """Single-phase, noise-free, effectively endless: every interval
    after thermal settling is quiescent — the fast path's best case and
    the decision-equivalence test's worst case (maximum skipped
    decisions)."""
    return Workload(
        name="quiescent",
        threads=n_tiles,
        total_instructions=10**13,
        ff_instructions=0,
        ipc_at_ref=1.0,
        activity=0.5,
        active_tiles=tuple(range(n_tiles)),
        activity_noise_sigma=0.0,
    )


def _run(system, cfg, controller=None, fan_level=2, threshold=80.0):
    engine = SimulationEngine(
        system, EnergyProblem(t_threshold_c=threshold), cfg
    )
    wl = quiescent_workload(system.chip.n_tiles)
    state = ActuatorState.initial(
        system.n_tec_devices,
        system.n_cores,
        system.dvfs.max_level,
        fan_level=fan_level,
    )
    return engine.run(
        WorkloadRun(wl, system.chip, 2.0),
        controller if controller is not None else FanTECController(),
        initial_state=state,
    )


# ----------------------------------------------------------------------
# Keys and propagator caches
# ----------------------------------------------------------------------
def test_tec_key_quantizes_to_1_over_256():
    assert tec_key(np.array([0.0, 1.0])) == tec_key(np.array([0.001, 1.0]))
    assert tec_key(np.array([0.0, 1.0])) != tec_key(np.array([0.5, 1.0]))


def test_actuator_keyer_fast_paths_match_generic():
    keyer = ActuatorKeyer()
    off, on = np.zeros(3), np.ones(3)
    assert keyer.key(2, off) == (2, tec_key(off))
    assert keyer.key(2, on) == (2, tec_key(on))
    assert keyer.key(3, np.array([0.5, 0, 1])) == (
        3,
        tec_key(np.array([0.5, 0, 1])),
    )


def test_exact_actuator_key_distinguishes_sub_quantum_activations():
    a, b = np.array([0.0, 0.001]), np.array([0.0, 0.0])
    assert tec_key(a) == tec_key(b)
    assert exact_actuator_key(1, a) != exact_actuator_key(1, b)


def test_propagator_cache_guard_demotes_collisions_to_misses():
    cache = PropagatorCache(max_entries=4)
    a, b = np.array([0.0, 0.001]), np.array([0.0, 0.0])
    key = (2, tec_key(a))  # == (2, tec_key(b)): quantized collision
    cache.insert(key, "value-for-a", exact=a)
    assert cache.lookup(key, exact=a) == "value-for-a"
    assert cache.lookup(key, exact=b) is None  # guard refuses
    assert cache.n_hits == 1 and cache.n_misses == 1


def test_propagator_cache_lru_eviction_and_stats():
    cache = PropagatorCache(max_entries=2)
    for i in range(3):
        cache.insert((i,), i)
    assert len(cache) == 2
    assert cache.n_evictions == 1
    assert cache.lookup((0,)) is None  # oldest evicted
    assert cache.lookup((2,)) == 2


def test_propagator_cache_pickles_empty_like_lu_cache():
    cache = PropagatorCache()
    cache.insert((1,), np.arange(3))
    cache.lookup((1,))
    clone = pickle.loads(pickle.dumps(cache))
    assert len(clone) == 0
    assert clone.n_hits == cache.n_hits  # stats survive


# ----------------------------------------------------------------------
# Transient caches: bit-identity and the satellite accessors
# ----------------------------------------------------------------------
def test_cached_betas_bit_identical_and_counted(system2):
    fresh = PaperTransient(system2.cond)
    tec = np.zeros(system2.n_tec_devices)
    first = fresh.betas(2e-3, 2, tec)
    again = fresh.betas(2e-3, 2, tec)
    assert again is first  # served from cache
    reference = np.exp(
        -2e-3 * system2.cond.diag(2, tec) / system2.cond.nodes.capacities
    )
    assert np.array_equal(first, reference)
    assert fresh._beta_cache.n_hits >= 1


def test_conductance_diag_matches_matrix_diagonal(system2):
    tec = np.linspace(0.0, 1.0, system2.n_tec_devices)
    d = system2.cond.diag(3, tec)
    assert np.allclose(
        d, system2.cond.matrix(3, tec).toarray().diagonal(), atol=0
    )


def test_conductance_apply_matches_assembled_product(system2):
    rng = np.random.default_rng(3)
    tec = (rng.random(system2.n_tec_devices) > 0.5).astype(float)
    x = rng.standard_normal(system2.cond.n_nodes)
    g = system2.cond.matrix(2, tec)
    assert np.allclose(system2.cond.apply(x, 2, tec), g @ x, rtol=1e-14)
    xb = rng.standard_normal((system2.cond.n_nodes, 4))
    assert np.allclose(system2.cond.apply(xb, 2, tec), g @ xb, rtol=1e-14)


def test_exact_transient_caches_dense_propagator(system2):
    exact = ExactTransient(system2.cond)
    tec = np.zeros(system2.n_tec_devices)
    n = system2.cond.n_nodes
    t0 = np.full(n, 330.0)
    ts = np.full(n, 350.0)
    a = exact.step(t0, ts, 2e-3, 2, tec)
    assert exact._phi_cache.n_misses == 1
    b = exact.step(t0, ts, 2e-3, 2, tec)
    assert exact._phi_cache.n_hits == 1
    assert np.array_equal(a, b)
    # time_constants_s shares the dense-G cache instead of re-densifying
    exact.time_constants_s(2, tec)
    assert exact._dense_cache.n_hits >= 1


# ----------------------------------------------------------------------
# Property: closed-form k-interval advance == k sequential steps
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=64),
    fan=st.integers(min_value=1, max_value=6),
    dt_ms=st.floats(min_value=0.5, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fast_forward_matches_sequential_steps(system2, k, fan, dt_ms, seed):
    dt = dt_ms * 1e-3
    rng = np.random.default_rng(seed)
    tr = PaperTransient(system2.cond)
    n = system2.cond.n_nodes
    tec = (rng.random(system2.n_tec_devices) > 0.5).astype(float)
    t0 = 300.0 + 60.0 * rng.random(n)
    ts = 300.0 + 60.0 * rng.random(n)
    stepped = t0
    for _ in range(k):
        stepped = tr.step(stepped, ts, dt, fan, tec)
    closed = tr.interpolate(t0, ts, dt * np.arange(1, k + 1), fan, tec)
    assert np.max(np.abs(closed[-1] - stepped)) <= 1e-9


# ----------------------------------------------------------------------
# Woodbury-corrected solver
# ----------------------------------------------------------------------
def _toggle_walk(solver, p, rng, n_steps=40):
    v = np.zeros(solver.model.tec.n_devices)
    out = []
    for _ in range(n_steps):
        d = rng.integers(v.size)
        v = v.copy()
        v[d] = 1.0 - v[d]
        out.append(solver.solve(p, 2, v))
    return out


def test_woodbury_matches_exact_within_tolerance(system4):
    rng = np.random.default_rng(7)
    p = rng.uniform(0.5, 3.0, system4.nodes.n_components)
    exact = SteadyStateSolver(system4.cond, cache_size=8)
    wb = SteadyStateSolver(system4.cond, cache_size=8, use_woodbury=True)
    a = _toggle_walk(exact, p, np.random.default_rng(1))
    b = _toggle_walk(wb, p, np.random.default_rng(1))
    assert wb.n_woodbury_solves > 0  # corrections actually served
    worst = max(float(np.max(np.abs(x - y))) for x, y in zip(a, b))
    # woodbury_rtol bounds the *residual*; G is well-conditioned here so
    # the temperature error stays within a small multiple of it.
    assert worst <= 1e-6
    assert wb.n_factorizations < exact.n_factorizations


def test_woodbury_solve_many_columns_match_solve(system4):
    rng = np.random.default_rng(11)
    wb = SteadyStateSolver(system4.cond, use_woodbury=True)
    base = np.zeros(system4.n_tec_devices)
    wb.solve(rng.uniform(0.5, 3.0, system4.nodes.n_components), 2, base)
    toggled = base.copy()
    toggled[0] = 1.0
    pm = rng.uniform(0.5, 3.0, (5, system4.nodes.n_components))
    rows = wb.solve_many(pm, 2, toggled)
    assert wb.n_woodbury_solves > 0  # the batch went through a correction
    for b in range(pm.shape[0]):
        assert np.allclose(rows[b], wb.solve(pm[b], 2, toggled), atol=1e-9)


def test_woodbury_fallback_is_bit_identical_to_exact(system4):
    rng = np.random.default_rng(13)
    p = rng.uniform(0.5, 3.0, system4.nodes.n_components)
    exact = SteadyStateSolver(system4.cond)
    # Impossible tolerance: every correction fails its residual check
    # and must be replaced by a fresh exact factorization.
    strict = SteadyStateSolver(
        system4.cond, use_woodbury=True, woodbury_rtol=0.0
    )
    base = np.zeros(system4.n_tec_devices)
    toggled = base.copy()
    toggled[2] = 1.0
    exact.solve(p, 2, base)
    strict.solve(p, 2, base)
    want = exact.solve(p, 2, toggled)
    got = strict.solve(p, 2, toggled)
    assert strict.n_woodbury_fallbacks == 1
    assert np.array_equal(got, want)
    # The repaired entry serves subsequent solves exactly, no re-fallback.
    got2 = strict.solve(p, 2, toggled)
    assert strict.n_woodbury_fallbacks == 1
    assert np.array_equal(got2, want)


def test_woodbury_rank_cap_declines_far_misses(system4):
    wb = SteadyStateSolver(
        system4.cond, use_woodbury=True, woodbury_max_rank=1
    )
    p = np.full(system4.nodes.n_components, 2.0)
    wb.solve(p, 2, np.zeros(system4.n_tec_devices))
    many_on = np.zeros(system4.n_tec_devices)
    many_on[: system4.n_tec_devices // 2] = 1.0
    wb.solve(p, 2, many_on)
    assert wb.n_woodbury_builds == 0
    assert wb.n_factorizations == 2


def test_solver_pickle_drops_woodbury_state(system4):
    wb = SteadyStateSolver(system4.cond, use_woodbury=True)
    p = np.full(system4.nodes.n_components, 2.0)
    wb.solve(p, 2, np.zeros(system4.n_tec_devices))
    v = np.zeros(system4.n_tec_devices)
    v[1] = 1.0
    wb.solve(p, 2, v)
    clone = pickle.loads(pickle.dumps(wb))
    assert len(clone._lu_cache) == 0
    assert len(clone._delta_cache) == 0
    assert clone.use_woodbury
    assert np.allclose(clone.solve(p, 2, v), wb.solve(p, 2, v), atol=1e-9)


# ----------------------------------------------------------------------
# Engine fast path: decision equivalence and bit-exact opt-outs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kernel_system():
    """Private system: interval-kernel runs toggle solver flags and
    warm caches; keep that away from the shared session fixtures."""
    return build_system(rows=2, cols=2)


@pytest.mark.parametrize(
    "controller_cls", [FanTECController, TECfanController]
)
def test_fast_forward_preserves_decisions(kernel_system, controller_cls):
    tel = Telemetry()
    classic = _run(
        kernel_system, EngineConfig(max_time_s=0.1), controller_cls()
    )
    with telemetry_session(tel):
        fast = _run(
            kernel_system,
            EngineConfig(max_time_s=0.1, interval_kernel=True),
            controller_cls(),
        )
    counters = tel.metrics.snapshot()["counters"]
    assert counters["engine.fast_forwarded_intervals"] > 0
    assert len(fast.trace) == len(classic.trace)
    for fld in ("tec_on", "fan_level", "mean_dvfs_level", "dt_s", "time_s"):
        assert np.array_equal(
            getattr(fast.trace, fld), getattr(classic.trace, fld)
        ), fld
    assert np.allclose(
        fast.trace.peak_temp_c, classic.trace.peak_temp_c, atol=1e-6
    )
    assert np.allclose(fast.trace.p_chip_w, classic.trace.p_chip_w, atol=1e-6)
    assert np.array_equal(fast.final_state.tec, classic.final_state.tec)
    assert np.array_equal(fast.final_state.dvfs, classic.final_state.dvfs)
    assert fast.metrics.instructions == classic.metrics.instructions


def test_forced_exact_kernel_is_bit_identical(kernel_system):
    classic = _run(kernel_system, EngineConfig(max_time_s=0.05))
    forced = _run(
        kernel_system,
        EngineConfig(
            max_time_s=0.05, interval_kernel=True, exact_kernel=True
        ),
    )
    for fld in TRACE_FIELDS:
        assert np.array_equal(
            getattr(forced.trace, fld), getattr(classic.trace, fld)
        ), fld
    assert forced.metrics == classic.metrics
    assert np.array_equal(forced.final_state.tec, classic.final_state.tec)
    assert np.array_equal(forced.final_state.dvfs, classic.final_state.dvfs)
    assert forced.final_state.fan_level == classic.final_state.fan_level


def test_faults_armed_disarms_kernel_bit_identically(kernel_system):
    classic = _run(kernel_system, EngineConfig(max_time_s=0.05))
    armed = _run(
        kernel_system,
        EngineConfig(
            max_time_s=0.05,
            interval_kernel=True,
            faults=FaultScheduler(),  # armed, empty script
        ),
    )
    for fld in TRACE_FIELDS:
        assert np.array_equal(
            getattr(armed.trace, fld), getattr(classic.trace, fld)
        ), fld
    assert armed.metrics == classic.metrics


def test_kernel_active_gating():
    assert EngineConfig(interval_kernel=True).kernel_active
    assert not EngineConfig().kernel_active
    assert not EngineConfig(
        interval_kernel=True, exact_kernel=True
    ).kernel_active
    assert not EngineConfig(
        interval_kernel=True, faults=FaultScheduler()
    ).kernel_active


def test_fast_forward_respects_unsafe_controller(kernel_system):
    class CountingController(FanTECController):
        fast_forward_safe = False

        def __init__(self):
            super().__init__()
            self.calls = 0

        def decide(self, *a, **kw):
            self.calls += 1
            return super().decide(*a, **kw)

    ctrl = CountingController()
    res = _run(
        kernel_system,
        EngineConfig(max_time_s=0.05, interval_kernel=True, priming_intervals=0),
        ctrl,
    )
    # Every recorded interval consulted the policy: nothing was skipped.
    assert ctrl.calls == len(res.trace)


def test_fast_forward_stops_at_fan_period_boundary(kernel_system):
    classic = _run(
        kernel_system,
        EngineConfig(max_time_s=0.1, dynamic_fan=True, fan_period_s=0.02),
        TECfanController(),
    )
    fast = _run(
        kernel_system,
        EngineConfig(
            max_time_s=0.1,
            dynamic_fan=True,
            fan_period_s=0.02,
            interval_kernel=True,
        ),
        TECfanController(),
    )
    assert np.array_equal(fast.trace.fan_level, classic.trace.fan_level)
    assert np.array_equal(fast.trace.tec_on, classic.trace.tec_on)


def test_engine_restores_solver_woodbury_flag(kernel_system):
    solver = kernel_system.solver
    assert not solver.use_woodbury
    _run(kernel_system, EngineConfig(max_time_s=0.02, interval_kernel=True))
    assert not solver.use_woodbury  # restored after the run
    solver.use_woodbury = True
    try:
        _run(
            kernel_system,
            EngineConfig(
                max_time_s=0.02, interval_kernel=True, exact_kernel=True
            ),
        )
        assert solver.use_woodbury  # restored to the caller's setting
    finally:
        solver.use_woodbury = False


def test_fast_forward_config_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(fast_forward_quiet=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(fast_forward_max=1)
    with pytest.raises(ConfigurationError):
        EngineConfig(fast_forward_steady_tol_k=-1.0)
