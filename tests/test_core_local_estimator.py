"""Banded one-core-at-a-time hardware estimator (Sec. III-E)."""

import numpy as np
import pytest

from repro.core.estimator import NextIntervalEstimator
from repro.core.local_estimator import (
    HW_TEMP_STEP_K,
    LocalBandedEstimator,
    _quantize,
)
from repro.core.state import ActuatorState
from repro.exceptions import ControlError
from repro.perf.ips import IPSTracker


def primed_pair(system, state):
    """A banded and a full estimator primed with identical measurements."""
    n_comp = system.nodes.n_components
    temps = np.full(n_comp, 70.0)
    p_dyn = np.full(n_comp, 0.15)
    ips = np.full(system.n_cores, 1.2e9)
    band = LocalBandedEstimator(
        system=system, ips_predictor=IPSTracker(system.dvfs)
    )
    full = NextIntervalEstimator(
        system=system, ips_predictor=IPSTracker(system.dvfs)
    )
    for est in (band, full):
        est.begin_interval(temps, p_dyn, ips, state, 2e-3)
    return band, full


def test_quantization_half_degree():
    t = np.array([345.12, 345.26])
    q = _quantize(t)
    np.testing.assert_allclose(q % HW_TEMP_STEP_K, 0.0, atol=1e-9)
    np.testing.assert_allclose(q, t, atol=HW_TEMP_STEP_K / 2 + 1e-9)


def test_evaluate_before_begin_raises(system2, base_state2):
    est = LocalBandedEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    with pytest.raises(ControlError):
        est.evaluate(base_state2)


def test_agrees_with_full_model_near_steady(system2, base_state2):
    """At the applied configuration the banded prediction must stay
    within ~1.5 K of the full model (quantization + locality error)."""
    band, full = primed_pair(system2, base_state2)
    eb = band.evaluate(base_state2)
    ef = full.evaluate(base_state2)
    assert abs(eb.peak_temp_c - ef.peak_temp_c) < 1.5


def test_candidate_sensitivity_direction(system2, base_state2):
    """Local what-ifs move temperature in the physically right way."""
    band, _ = primed_pair(system2, base_state2)
    e0 = band.evaluate(base_state2)
    hotter = band.evaluate(base_state2)  # baseline
    lower = band.evaluate(base_state2.with_dvfs(0, 0))
    assert lower.p_cores_w < e0.p_cores_w
    tec_on = base_state2.with_tec(0, 1.0)
    e_tec = band.evaluate(tec_on)
    assert e_tec.p_tec_w > 0.0


def test_only_changed_cores_resolved(system2, base_state2):
    band, _ = primed_pair(system2, base_state2)
    band.evaluate(base_state2)  # builds the base prediction (N solves)
    n0 = band.n_core_solves
    band.evaluate(base_state2.with_dvfs(0, 4))
    assert band.n_core_solves == n0 + 1  # exactly one core re-solved
    band.evaluate(base_state2.with_dvfs(0, 4).with_dvfs(1, 4))
    assert band.n_core_solves == n0 + 3  # two more for the 2-core diff


def test_memoized(system2, base_state2):
    band, _ = primed_pair(system2, base_state2)
    band.evaluate(base_state2)
    n = band.n_evaluations
    band.evaluate(base_state2)
    assert band.n_evaluations == n


def test_fan_estimate_uses_full_model(system2, base_state2):
    band, full = primed_pair(system2, base_state2)
    p = np.full(system2.nodes.n_components, 0.15)
    tec = np.zeros(system2.n_tec_devices)
    assert band.evaluate_fan_setting(p, tec, 2) == pytest.approx(
        full.evaluate_fan_setting(p, tec, 2)
    )


def test_observer_boots_from_anchor(system2, base_state2):
    """First begin_interval must not leave spreader/sink at ambient (the
    bug class this estimator had: a frozen-cold boundary biases every
    local solve)."""
    band, _ = primed_pair(system2, base_state2)
    rest = band._t_nodes_k[system2.nodes.spreader_slice]
    assert np.all(rest > system2.package.ambient_k + 1.0)
