"""The 4-core server platform of Sec. V-E."""

import numpy as np
import pytest

from repro.power.dvfs import I7_DVFS
from repro.server.platform import build_server_system
from repro.server.server_power import ServerPowerParams


@pytest.fixture(scope="module")
def platform():
    return build_server_system()


def test_four_cores(platform):
    assert platform.system.n_cores == 4
    assert platform.system.n_tec_devices == 36  # 9 per core


def test_i7_dvfs_table(platform):
    assert platform.system.dvfs is I7_DVFS


def test_threshold_plausible(platform):
    """Full-load peak must land in a desktop-CPU range."""
    assert 75.0 < platform.t_threshold_c < 100.0


def test_power_envelope_near_tdp(platform):
    """All cores busy at max DVFS: chip power ~ TDP (77 W class)."""
    system = platform.system
    from repro.core.state import ActuatorState

    state = ActuatorState.initial(36, 4, system.dvfs.max_level, 1)
    p_dyn = system.power.component_power.dynamic_power_w(
        np.ones(4), state.dvfs, None
    )
    t, p_leak = system.plant_thermal.solve(p_dyn, 1, state.tec)
    total = p_dyn.sum() + p_leak.sum()
    assert 60.0 < total < 95.0


def test_params_defaults():
    p = ServerPowerParams()
    assert p.tdp_w == pytest.approx(77.0)
    assert p.peak_ips == pytest.approx(6.0e9)


def test_idle_floor_applied(platform):
    assert platform.system.power.component_power.idle_activity == (
        pytest.approx(ServerPowerParams().idle_activity)
    )
