"""Package stack parameters and derived conductances."""

import pytest

from repro.exceptions import ConfigurationError
from repro.thermal.package import PackageStack


def test_defaults_valid():
    pkg = PackageStack()
    assert pkg.ambient_k == pytest.approx(313.15)


def test_nonpositive_parameter_rejected():
    with pytest.raises(ConfigurationError):
        PackageStack(tim_thickness_m=0.0)
    with pytest.raises(ConfigurationError):
        PackageStack(k_sink=-1.0)


def test_tim_conductance_scales_with_area():
    pkg = PackageStack()
    assert pkg.tim_vertical_conductance(2.0) == pytest.approx(
        2 * pkg.tim_vertical_conductance(1.0)
    )


def test_thinner_tim_conducts_better():
    thick = PackageStack(tim_thickness_m=100e-6)
    thin = PackageStack(tim_thickness_m=50e-6)
    assert thin.tim_vertical_conductance(1.0) > thick.tim_vertical_conductance(
        1.0
    )


def test_lateral_conductance_geometry():
    pkg = PackageStack()
    g1 = pkg.die_lateral_conductance(1.0, 1.0)
    g2 = pkg.die_lateral_conductance(2.0, 1.0)  # wider contact
    g3 = pkg.die_lateral_conductance(1.0, 2.0)  # farther centroids
    assert g2 == pytest.approx(2 * g1)
    assert g3 == pytest.approx(0.5 * g1)


def test_spreader_sink_conductance_reciprocal():
    pkg = PackageStack(r_spreader_sink_per_tile=2.0)
    assert pkg.spreader_sink_conductance() == pytest.approx(0.5)


def test_heat_capacities_positive_and_scaled():
    pkg = PackageStack()
    assert pkg.component_heat_capacity(0.5) > 0
    assert pkg.component_heat_capacity(1.0) == pytest.approx(
        2 * pkg.component_heat_capacity(0.5)
    )
    # Splitting the spreader over more tiles shrinks each node's C.
    assert pkg.spreader_tile_heat_capacity(16) == pytest.approx(
        pkg.spreader_tile_heat_capacity(4) / 4
    )


def test_sink_heat_capacity_matches_paper_scale():
    """Sec. III-D: heat sink capacity 'hundreds of Joule per Kelvin'."""
    pkg = PackageStack()
    assert 100.0 <= pkg.sink_heat_capacity_j_per_k <= 1000.0


def test_sink_time_constant_in_paper_range(system16):
    """Sec. IV-C: heat-sink thermal constant 15-30 s."""
    import numpy as np

    nd = system16.nodes
    pkg = system16.package
    g_conv = system16.fan.convection_conductance_w_per_k(1)
    tau = pkg.sink_heat_capacity_j_per_k / g_conv
    assert 10.0 < tau < 60.0
