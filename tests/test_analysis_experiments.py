"""Experiment flows: base scenarios and policy suites at small scale."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    BaseScenario,
    make_policies,
    run_base_scenario,
    run_policy_suite,
)
from repro.core.tecfan import TECfanController


def test_make_policies_order_and_names():
    names = [p.name for p in make_policies()]
    assert names == ["Fan-only", "Fan+TEC", "Fan+DVFS", "DVFS+TEC", "TECfan"]


@pytest.mark.slow
def test_base_scenario_fields(system16):
    base = run_base_scenario(system16, "fmm", 16)
    assert isinstance(base, BaseScenario)
    assert base.t_threshold_c == base.result.metrics.peak_temp_c
    assert base.processor_power_w < base.result.metrics.average_power_w


@pytest.mark.slow
def test_policy_suite_structure(system16):
    base, outcomes = run_policy_suite(
        system16,
        "lu",
        16,
        policies=[TECfanController()],
    )
    assert "TECfan" in outcomes
    oc = outcomes["TECfan"]
    assert oc.chosen.metrics.policy == "TECfan"
    assert len(oc.sweep) >= 1
    # TECfan never exceeds the base peak by more than noise.
    assert oc.chosen.metrics.violation_rate <= 0.05


@pytest.mark.slow
def test_fan_only_outcome_is_base(system16):
    from repro.core.baselines import FanOnlyController

    base, outcomes = run_policy_suite(
        system16, "fmm", 16, policies=[FanOnlyController()]
    )
    m = outcomes["Fan-only"].chosen.metrics
    assert m.energy_j == base.result.metrics.energy_j
    assert m.fan_level == 1
