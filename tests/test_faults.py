"""Fault models, scheduler semantics, and the guard state machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import ActuatorState
from repro.exceptions import ConfigurationError, FaultInjectionError
from repro.faults import (
    FAULT_KINDS,
    ActuatorHealthMonitor,
    DVFSStuckFault,
    FanDegradedFault,
    FanStuckFault,
    FaultScheduler,
    HealthConfig,
    SensorDriftFault,
    SensorDropoutFault,
    SensorStuckFault,
    SensorValidator,
    TECStuckFault,
    ThermalWatchdog,
    WatchdogConfig,
    safe_state,
)


# ----------------------------------------------------------------------
# Fault models: windows and eager validation
# ----------------------------------------------------------------------
def test_activity_window_half_open():
    f = TECStuckFault(device=0, t_start_s=1.0, t_end_s=2.0)
    assert not f.active(0.999)
    assert f.active(1.0)
    assert f.active(1.999)
    assert not f.active(2.0)


def test_permanent_fault_has_no_end():
    f = FanStuckFault(level=3, t_start_s=0.5)
    assert f.active(0.5) and f.active(1e9)


@pytest.mark.parametrize(
    "bad",
    [
        lambda: TECStuckFault(device=-1),
        lambda: TECStuckFault(mode="stuck_sideways"),
        lambda: FanStuckFault(level=0),
        lambda: FanDegradedFault(levels_lost=0),
        lambda: DVFSStuckFault(core=-3),
        lambda: SensorStuckFault(component=-1),
        lambda: SensorDropoutFault(p_drop=0.0),
        lambda: SensorDropoutFault(p_drop=1.5),
        lambda: SensorDriftFault(drift_c_per_s=0.0),
        lambda: TECStuckFault(t_start_s=-1.0),
        lambda: TECStuckFault(t_start_s=2.0, t_end_s=2.0),
    ],
)
def test_malformed_faults_rejected_at_construction(bad):
    with pytest.raises(FaultInjectionError):
        bad()


# ----------------------------------------------------------------------
# Scheduler: transformations, latching, determinism
# ----------------------------------------------------------------------
def test_no_active_fault_returns_input_unchanged():
    sched = FaultScheduler([TECStuckFault(device=1, t_start_s=5.0)])
    tec = np.array([1.0, 1.0, 0.0])
    dvfs = np.array([3, 3], dtype=int)
    temps = np.array([50.0, 60.0])
    # Before the window: identity, and the *same object* (no copies on
    # the healthy path — that is what keeps no-fault runs bit-identical).
    assert sched.apply_tec(0.0, tec) is tec
    assert sched.apply_dvfs(0.0, dvfs) is dvfs
    assert sched.apply_sensors(0.0, temps) is temps
    assert sched.apply_fan(0.0, 2, n_levels=6) == 2
    assert not sched.any_active(0.0)


def test_tec_stuck_modes():
    sched = FaultScheduler(
        [
            TECStuckFault(device=0, mode="stuck_off"),
            TECStuckFault(device=2, mode="stuck_on"),
        ]
    )
    out = sched.apply_tec(0.0, np.array([1.0, 1.0, 0.0]))
    assert out.tolist() == [0.0, 1.0, 1.0]


def test_fan_stuck_latches_onset_level():
    sched = FaultScheduler([FanStuckFault(level=None, t_start_s=1.0)])
    assert sched.apply_fan(0.0, 2, n_levels=6) == 2
    assert sched.apply_fan(1.0, 4, n_levels=6) == 4  # latched here
    assert sched.apply_fan(2.0, 1, n_levels=6) == 4  # commands ignored
    sched.reset()
    assert sched.apply_fan(1.5, 3, n_levels=6) == 3  # fresh latch


def test_fan_degraded_clips_to_slowest():
    sched = FaultScheduler([FanDegradedFault(levels_lost=2)])
    assert sched.apply_fan(0.0, 1, n_levels=6) == 3
    assert sched.apply_fan(0.0, 5, n_levels=6) == 6


def test_dvfs_stuck_single_core_latches():
    sched = FaultScheduler([DVFSStuckFault(core=1, t_start_s=0.0)])
    first = sched.apply_dvfs(0.0, np.array([5, 5], dtype=int))
    assert first.tolist() == [5, 5]
    later = sched.apply_dvfs(1.0, np.array([2, 2], dtype=int))
    assert later.tolist() == [2, 5]  # core 1 frozen at onset level


def test_sensor_stuck_and_drift():
    sched = FaultScheduler(
        [
            SensorStuckFault(component=0, value_c=40.0),
            SensorDriftFault(component=1, drift_c_per_s=2.0, t_start_s=1.0),
        ]
    )
    out = sched.apply_sensors(3.0, np.array([80.0, 80.0, 80.0]))
    assert out[0] == 40.0
    assert out[1] == pytest.approx(80.0 + 2.0 * 2.0)
    assert out[2] == 80.0


def test_sensor_dropout_deterministic_per_seed():
    def pattern(seed):
        sched = FaultScheduler(
            [SensorDropoutFault(component=0, p_drop=0.5)], seed=seed
        )
        return [
            sched.apply_sensors(0.0, np.array([70.0]))[0] for _ in range(40)
        ]

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)
    # reset() replays the identical sequence.
    sched = FaultScheduler(
        [SensorDropoutFault(component=0, p_drop=0.5)], seed=7
    )
    a = [sched.apply_sensors(0.0, np.array([70.0]))[0] for _ in range(40)]
    sched.reset()
    b = [sched.apply_sensors(0.0, np.array([70.0]))[0] for _ in range(40)]
    assert a == b


def test_from_spec_round_trip_and_errors():
    sched = FaultScheduler.from_spec(
        [
            {"kind": "tec_stuck", "device": 3, "mode": "stuck_on"},
            {"kind": "fan_stuck", "level": 2, "t_start_s": 0.5},
        ]
    )
    assert isinstance(sched.faults[0], TECStuckFault)
    assert isinstance(sched.faults[1], FanStuckFault)
    with pytest.raises(FaultInjectionError):
        FaultScheduler.from_spec({"kind": "tec_stuck"})  # not a list
    with pytest.raises(FaultInjectionError):
        FaultScheduler.from_spec([{"device": 1}])  # no kind
    with pytest.raises(FaultInjectionError):
        FaultScheduler.from_spec([{"kind": "warp_core_breach"}])
    with pytest.raises(FaultInjectionError):
        FaultScheduler.from_spec([{"kind": "fan_stuck", "rpm": 9000}])
    assert set(FAULT_KINDS) >= {"tec_stuck", "fan_stuck", "sensor_stuck"}


def test_scheduler_rejects_non_fault_objects():
    with pytest.raises(FaultInjectionError):
        FaultScheduler([{"kind": "tec_stuck"}])
    with pytest.raises(FaultInjectionError):
        FaultScheduler().add("fan_stuck")


def test_validate_against_system(system2):
    FaultScheduler(
        [TECStuckFault(device=system2.n_tec_devices - 1)]
    ).validate(system2)
    with pytest.raises(FaultInjectionError):
        FaultScheduler(
            [TECStuckFault(device=system2.n_tec_devices)]
        ).validate(system2)
    with pytest.raises(FaultInjectionError):
        FaultScheduler([DVFSStuckFault(core=99)]).validate(system2)
    with pytest.raises(FaultInjectionError):
        FaultScheduler(
            [FanStuckFault(level=system2.fan.n_levels + 1)]
        ).validate(system2)
    with pytest.raises(FaultInjectionError):
        FaultScheduler(
            [SensorStuckFault(component=system2.nodes.n_components)]
        ).validate(system2)


# ----------------------------------------------------------------------
# Thermal watchdog
# ----------------------------------------------------------------------
def test_watchdog_trips_after_debounce_and_recovers_with_hysteresis():
    cfg = WatchdogConfig(
        margin_c=1.0, trip_intervals=2, recover_margin_c=2.0,
        recover_intervals=3,
    )
    dog = ThermalWatchdog(cfg, t_threshold_c=80.0)
    assert not dog.feed(81.5)  # one hot interval: debounced
    assert not dog.feed(80.5)  # back under margin resets the streak
    assert not dog.feed(81.5)
    assert dog.feed(81.2)  # second consecutive: trip
    assert dog.trips == 1
    # Recovery needs sustained deep cooling, not one cool reading.
    assert dog.feed(77.0)
    assert dog.feed(79.0)  # inside hysteresis band: hold-down restarts
    assert dog.feed(77.5)
    assert dog.feed(77.5)
    assert not dog.feed(77.5)  # third consecutive cool interval
    assert dog.trips == 1


def test_watchdog_config_validation():
    with pytest.raises(ConfigurationError):
        WatchdogConfig(margin_c=-0.1)
    with pytest.raises(ConfigurationError):
        WatchdogConfig(trip_intervals=0)
    with pytest.raises(ConfigurationError):
        WatchdogConfig(recover_intervals=0)


def test_safe_state_is_max_cooling_min_heat():
    s = safe_state(n_tec_devices=4, n_cores=2)
    assert s.tec.tolist() == [1.0] * 4
    assert s.dvfs.tolist() == [0, 0]
    assert s.fan_level == 1


# ----------------------------------------------------------------------
# Actuator health monitor
# ----------------------------------------------------------------------
def _observe(mon, *, tec_cmd, tec_eff, fan_cmd=1, fan_eff=1):
    mon.observe(
        tec_cmd=np.asarray(tec_cmd, dtype=float),
        tec_eff=np.asarray(tec_eff, dtype=float),
        dvfs_cmd=np.zeros(2, dtype=int),
        dvfs_eff=np.zeros(2, dtype=int),
        fan_cmd=fan_cmd,
        fan_eff=fan_eff,
    )


def test_health_masks_after_persistent_divergence_and_is_sticky():
    mon = ActuatorHealthMonitor(
        HealthConfig(divergence_intervals=2), n_devices=3, n_cores=2
    )
    _observe(mon, tec_cmd=[1, 0, 0], tec_eff=[0, 0, 0])
    assert mon.health().all_ok  # one interval: engagement transient
    _observe(mon, tec_cmd=[1, 0, 0], tec_eff=[0, 0, 0])
    assert not mon.health().tec_ok[0]
    assert mon.n_masked == 1
    # Sticky: agreement later does not resurrect the actuator.
    _observe(mon, tec_cmd=[0, 0, 0], tec_eff=[0, 0, 0])
    assert not mon.health().tec_ok[0]


def test_health_fan_masks_on_first_divergence():
    # Tach feedback is exact: the default masks the fan in one interval.
    mon = ActuatorHealthMonitor(HealthConfig(), n_devices=1, n_cores=2)
    _observe(mon, tec_cmd=[0], tec_eff=[0], fan_cmd=2, fan_eff=6)
    assert not mon.health().fan_ok


def test_health_reconcile_overwrites_only_masked_knobs():
    mon = ActuatorHealthMonitor(
        HealthConfig(divergence_intervals=1), n_devices=2, n_cores=2
    )
    _observe(mon, tec_cmd=[1, 1], tec_eff=[0, 1], fan_cmd=2, fan_eff=5)
    state = ActuatorState(
        tec=np.array([1.0, 1.0]),
        dvfs=np.array([3, 3], dtype=int),
        fan_level=2,
    )
    fixed = mon.reconcile(state)
    assert fixed.tec.tolist() == [0.0, 1.0]  # dead device reads back 0
    assert fixed.fan_level == 5  # fan reads back its true level
    assert fixed.dvfs.tolist() == [3, 3]  # healthy knobs untouched


def test_health_reconcile_noop_when_all_ok():
    mon = ActuatorHealthMonitor(HealthConfig(), n_devices=2, n_cores=2)
    state = ActuatorState(
        tec=np.zeros(2), dvfs=np.zeros(2, dtype=int), fan_level=1
    )
    assert mon.reconcile(state) is state


def test_health_config_validation():
    with pytest.raises(ConfigurationError):
        HealthConfig(divergence_intervals=0)
    with pytest.raises(ConfigurationError):
        HealthConfig(fan_divergence_intervals=0)
    with pytest.raises(ConfigurationError):
        HealthConfig(tec_tolerance=1.5)
    with pytest.raises(ConfigurationError):
        HealthConfig(sensor_tolerance_c=0.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(sensor_global_frac=0.0)


# ----------------------------------------------------------------------
# Sensor validator
# ----------------------------------------------------------------------
def test_validator_substitutes_cold_liar_immediately_then_masks():
    v = SensorValidator(HealthConfig(sensor_intervals=3))
    predicted = np.array([80.0, 80.0, 80.0, 80.0, 80.0])
    lying = np.array([80.0, 30.0, 80.0, 80.0, 80.0])
    for _ in range(3):
        out = v.filter(lying, predicted)
        # Substituted from interval one — before the mask latches.
        assert out[1] == 80.0
        assert out[0] == 80.0
    assert v.n_masked == 1
    # Once masked, even a plausible reading is replaced by the model.
    healed = np.array([80.0, 79.5, 80.0, 80.0, 80.0])
    assert v.filter(healed, predicted)[1] == 80.0


def test_validator_trusts_hot_readings():
    v = SensorValidator(HealthConfig())
    predicted = np.full(5, 70.0)
    hot = np.array([70.0, 95.0, 70.0, 70.0, 70.0])
    for _ in range(10):
        out = v.filter(hot, predicted)
    assert out[1] == 95.0  # never suppressed, never masked
    assert v.n_masked == 0


def test_validator_holds_off_on_global_divergence():
    # >25 % of sensors implausible at once: model error, not sensors.
    v = SensorValidator(HealthConfig(sensor_intervals=1))
    predicted = np.full(4, 90.0)
    readings = np.array([60.0, 60.0, 70.0, 89.0])
    out = v.filter(readings, predicted)
    np.testing.assert_array_equal(out, readings)  # raw passthrough
    assert v.n_masked == 0


def test_validator_passthrough_before_first_prediction():
    v = SensorValidator(HealthConfig())
    readings = np.array([50.0, 60.0])
    assert v.filter(readings, None) is readings
