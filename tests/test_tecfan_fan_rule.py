"""TECfan's hierarchical fan-level rule at small scale."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    fan_level_feasible_with_tec_assist,
    run_tecfan_with_own_fan_rule,
)
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.tecfan import TECfanController
from repro.perf.workload import Phase, Workload


def small_workload(chip):
    return Workload(
        name="unit",
        threads=chip.n_tiles,
        total_instructions=60_000_000 * chip.n_tiles,
        ff_instructions=0,
        ipc_at_ref=0.5,
        activity=0.85,
        active_tiles=tuple(range(chip.n_tiles)),
        phases=(Phase(1.0),),
        activity_noise_sigma=0.0,
    )


def test_fan_rule_settles_at_a_feasible_level(system2):
    """The ratchet returns a run whose level the assist-check accepts
    and whose own metrics meet the policy's performance guards."""
    wl = small_workload(system2.chip)
    # Threshold with headroom at level 1 so the ratchet can move.
    problem = EnergyProblem(t_threshold_c=90.0)
    engine = SimulationEngine(
        system2, problem, EngineConfig(max_time_s=2.0, priming_intervals=3)
    )
    result, history = run_tecfan_with_own_fan_rule(
        engine, wl, TECfanController(), problem
    )
    assert history  # at least one probe ran
    level = result.metrics.fan_level
    assert 1 <= level <= system2.fan.n_levels
    assert result.metrics.violation_rate <= 0.05
    assert fan_level_feasible_with_tec_assist(
        system2, result.avg_p_components_w, level, problem,
        start_tec=result.avg_tec,
    )


def test_fan_rule_respects_performance_guards_when_tight(system2):
    """With the threshold at the level-1 operating point, whatever level
    the ratchet settles at must satisfy its own guards: within the
    violation tolerance and without leaning on throttling (the small
    2-core workload runs cool enough that slow levels can genuinely be
    feasible — the guard properties, not a specific level, are the
    contract)."""
    wl = small_workload(system2.chip)
    probe_problem = EnergyProblem(t_threshold_c=120.0)
    engine = SimulationEngine(
        system2, probe_problem,
        EngineConfig(max_time_s=2.0, priming_intervals=3),
    )
    from repro.core.baselines import FanOnlyController
    from repro.perf.workload import WorkloadRun

    base = engine.run(
        WorkloadRun(wl, system2.chip, 2.0), FanOnlyController()
    )
    tight = EnergyProblem(t_threshold_c=base.metrics.peak_temp_c + 0.2)
    engine2 = SimulationEngine(
        system2, tight, EngineConfig(max_time_s=2.0, priming_intervals=3)
    )
    result, _ = run_tecfan_with_own_fan_rule(
        engine2, wl, TECfanController(), tight, violation_tol=0.05,
        delay_tol=0.05,
    )
    assert result.metrics.violation_rate <= 0.05
    assert result.metrics.execution_time_s <= (
        base.metrics.execution_time_s * 1.05 + 1e-9
    )
    # And the chosen level never wastes energy vs staying at level 1.
    assert result.metrics.energy_j <= base.metrics.energy_j * 1.25


def test_assist_check_monotone_in_fan_level(system2):
    """If level L is infeasible even with all TECs, L+1 is too."""
    p = np.full(system2.nodes.n_components, 0.5)
    problem = EnergyProblem(t_threshold_c=75.0)
    feas = [
        fan_level_feasible_with_tec_assist(system2, p, lv, problem)
        for lv in range(1, system2.fan.n_levels + 1)
    ]
    # Once False, never True again.
    seen_false = False
    for f in feas:
        if seen_false:
            assert not f
        seen_false = seen_false or (not f)
