"""Metrics registry: counters, gauges, histogram bucket edges, kind clashes."""

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import DEFAULT_MS_BUCKETS, Histogram, MetricsRegistry


@pytest.fixture()
def reg():
    return MetricsRegistry()


def test_counter_increments(reg):
    c = reg.counter("tec.switch_events")
    c.inc()
    c.inc(3)
    assert c.value == 4
    # create-on-first-use returns the same instance
    assert reg.counter("tec.switch_events") is c


def test_counter_rejects_negative(reg):
    with pytest.raises(ObservabilityError):
        reg.counter("x").inc(-1)


def test_gauge_holds_last_value(reg):
    g = reg.gauge("fan.level")
    g.set(2.0)
    g.set(1.0)
    assert g.value == 1.0


def test_histogram_bucket_edges_bisect_left():
    h = Histogram(name="h", edges=(1.0, 2.0, 5.0))
    # bisect_left: a value exactly on an edge lands in the bucket whose
    # upper bound IS that edge (v <= edge).
    h.observe(0.5)   # bucket 0 (<= 1.0)
    h.observe(1.0)   # bucket 0 (on edge)
    h.observe(1.5)   # bucket 1 (<= 2.0)
    h.observe(5.0)   # bucket 2 (on last edge)
    h.observe(7.0)   # overflow
    assert list(h.counts) == [2, 1, 1, 1]
    assert h.overflow == 1
    assert h.count == 5
    assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 5.0 + 7.0) / 5)
    assert h.min == 0.5
    assert h.max == 7.0


def test_histogram_requires_increasing_edges():
    with pytest.raises(ObservabilityError):
        Histogram(name="bad", edges=(1.0, 1.0))
    with pytest.raises(ObservabilityError):
        Histogram(name="bad", edges=(2.0, 1.0))
    with pytest.raises(ObservabilityError):
        Histogram(name="bad", edges=())


def test_default_ms_buckets_are_valid():
    h = Histogram(name="ms", edges=DEFAULT_MS_BUCKETS)
    h.observe(0.3)
    assert h.count == 1


def test_histogram_reregistration_edge_mismatch(reg):
    reg.histogram("thermal.solver_ms", edges=(1.0, 2.0))
    # same edges: fine, same instance
    again = reg.histogram("thermal.solver_ms", edges=(1.0, 2.0))
    assert again is reg.histogram("thermal.solver_ms", edges=(1.0, 2.0))
    # the error names the metric and shows both edge tuples, so a
    # mismatch deep in a merge/fan-out is diagnosable from the message
    with pytest.raises(ObservabilityError) as exc_info:
        reg.histogram("thermal.solver_ms", edges=(1.0, 3.0))
    message = str(exc_info.value)
    assert "thermal.solver_ms" in message
    assert "(1.0, 3.0)" in message
    assert "(1.0, 2.0)" in message


def test_kind_clash_raises(reg):
    reg.counter("metric.a")
    with pytest.raises(ObservabilityError):
        reg.gauge("metric.a")
    with pytest.raises(ObservabilityError):
        reg.histogram("metric.a", edges=(1.0,))


def test_snapshot_shape_and_reset(reg):
    reg.counter("c").inc(2)
    reg.gauge("g").set(3.5)
    reg.histogram("h", edges=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 3.5}
    assert snap["histograms"]["h"]["count"] == 1
    reg.reset()
    empty = reg.snapshot()
    assert empty == {"counters": {}, "gauges": {}, "histograms": {}}
