"""Calibrated SPLASH-2 suite: Table I bookkeeping and profiles."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.perf.splash2 import (
    BENCHMARKS,
    FOUR_THREAD_TILES,
    TABLE1_CASES,
    TABLE1_TARGETS,
    component_profile,
    splash2_workload,
    table1_row,
    thread_weights,
)


def test_table1_has_eight_rows():
    assert len(TABLE1_TARGETS) == 8
    assert len(TABLE1_CASES) == 8


def test_published_values_verbatim():
    row = table1_row("cholesky", 16)
    assert row.time_ms == 48.0
    assert row.power_w == 125.9
    assert row.peak_temp_c == 90.07
    assert row.instructions == 1_000_000_000
    row = table1_row("water", 4)
    assert row.peak_temp_c == 68.7


def test_unknown_case_raises():
    with pytest.raises(WorkloadError):
        table1_row("water", 16)  # suspended in the paper, not reported


def test_all_cases_build(chip16):
    for name, threads in TABLE1_CASES:
        wl = splash2_workload(name, threads, chip16)
        assert wl.threads == threads
        assert wl.total_instructions == table1_row(name, threads).instructions


def test_four_thread_placement(chip16):
    wl = splash2_workload("water", 4, chip16)
    assert wl.active_tiles == FOUR_THREAD_TILES


def test_profile_power_preserving(chip16):
    """Profiles redistribute power density without changing totals."""
    alloc = chip16.power_weights() * chip16.areas_mm2()
    for name in BENCHMARKS:
        prof = component_profile(chip16, name)
        assert float((alloc * prof).sum()) == pytest.approx(
            float(alloc.sum()), rel=1e-9
        )
        assert np.all(prof > 0)


def test_volrend_is_the_most_uniform(chip16):
    """The paper singles out volrend's uniform power density — the reason
    Fan+DVFS beats Fan+TEC on it (Sec. V-C)."""
    areas = chip16.areas_mm2()
    weights = chip16.power_weights()

    def density_spread(name):
        prof = component_profile(chip16, name, 16)
        density = prof * weights  # W per mm^2, up to a constant
        return density.max() / density.min()

    spreads = {n: density_spread(n) for n in ("cholesky", "fmm", "volrend",
                                              "lu")}
    assert spreads["volrend"] == min(spreads.values())


def test_thread_weights_normalized():
    for name in BENCHMARKS:
        for threads in (4, 16):
            w = thread_weights(name, threads)
            assert len(w) == threads
            assert np.mean(w) == pytest.approx(1.0)
            assert min(w) > 0


def test_imbalance_ordering():
    """cholesky/lu are markedly imbalanced, fmm/water near-balanced."""
    spread = lambda n: max(thread_weights(n, 16)) - min(thread_weights(n, 16))
    assert spread("cholesky") > spread("fmm")
    assert spread("lu") > spread("water")


def test_ipc_accounts_for_critical_path(chip16):
    """Execution time = slowest thread's budget / (ipc * f): the stored
    IPC is scaled by the critical-path weight so Table I time holds."""
    for name, threads in TABLE1_CASES:
        wl = splash2_workload(name, threads, chip16)
        row = table1_row(name, threads)
        t = max(
            wl.thread_budget(i) for i in range(threads)
        ) / (wl.ipc_at_ref * 2.0e9)
        assert t * 1e3 == pytest.approx(row.time_ms, rel=0.01)
