"""ActuatorState: immutability and candidate construction."""

import numpy as np
import pytest

from repro.core.state import ActuatorState
from repro.exceptions import ConfigurationError


@pytest.fixture()
def state():
    return ActuatorState.initial(
        n_devices=6, n_cores=2, max_dvfs_level=5, fan_level=1
    )


def test_initial_is_base_scenario(state):
    assert state.tec_on_count == 0
    assert np.all(state.dvfs == 5)
    assert state.fan_level == 1


def test_arrays_frozen(state):
    with pytest.raises(ValueError):
        state.tec[0] = 1.0
    with pytest.raises(ValueError):
        state.dvfs[0] = 0


def test_with_tec_copies(state):
    s2 = state.with_tec(3, 1.0)
    assert s2.tec[3] == 1.0
    assert state.tec[3] == 0.0
    assert s2.tec_on_count == 1


def test_with_dvfs_copies(state):
    s2 = state.with_dvfs(1, 2)
    assert s2.dvfs[1] == 2
    assert state.dvfs[1] == 5


def test_with_fan(state):
    assert state.with_fan(4).fan_level == 4


def test_with_vectors(state):
    s2 = state.with_tec_vector(np.ones(6)).with_dvfs_vector(np.zeros(2))
    assert s2.tec_on_count == 6
    assert np.all(s2.dvfs == 0)


def test_validation():
    with pytest.raises(ConfigurationError):
        ActuatorState(tec=np.array([1.5]), dvfs=np.array([0]), fan_level=1)
    with pytest.raises(ConfigurationError):
        ActuatorState(tec=np.array([0.0]), dvfs=np.array([0]), fan_level=0)


def test_key_identity(state):
    assert state.key() == state.with_fan(1).key()
    assert state.key() != state.with_fan(2).key()
    assert state.key() != state.with_tec(0, 1.0).key()


def test_tec_on_mask_fractional():
    s = ActuatorState(
        tec=np.array([0.0, 0.4, 0.6, 1.0]),
        dvfs=np.array([5]),
        fan_level=1,
    )
    np.testing.assert_array_equal(
        s.tec_on_mask(), [False, False, True, True]
    )
    assert s.tec_on_count == 2
