"""Chip-level floorplans: tile arrays, adjacency, lookups."""

import numpy as np
import pytest

from repro.exceptions import FloorplanError
from repro.floorplan.chip import build_chip
from repro.floorplan.core_tile import COMPONENTS_PER_TILE


def test_paper_chip_dimensions(chip16):
    """Fig. 3: 10.4 mm x 14.4 mm, 4 x 4 core tile array."""
    assert chip16.chip_width_mm == pytest.approx(10.4)
    assert chip16.chip_height_mm == pytest.approx(14.4)
    assert chip16.n_tiles == 16
    assert chip16.n_components == 16 * COMPONENTS_PER_TILE


def test_invalid_grid_rejected():
    with pytest.raises(FloorplanError):
        build_chip(rows=0, cols=4)


def test_tile_origin_row_major(chip16):
    assert chip16.tile_origin(0) == (0.0, 0.0)
    assert chip16.tile_origin(1) == (pytest.approx(2.6), 0.0)
    assert chip16.tile_origin(4) == (0.0, pytest.approx(3.6))


def test_tile_slice_partitions_components(chip16):
    seen = set()
    for t in range(chip16.n_tiles):
        s = chip16.tile_slice(t)
        idx = set(range(s.start, s.stop))
        assert not (idx & seen)
        seen |= idx
    assert seen == set(range(chip16.n_components))


def test_tile_neighbours_grid(chip16):
    assert sorted(chip16.tile_neighbours(0)) == [1, 4]
    assert sorted(chip16.tile_neighbours(5)) == [1, 4, 6, 9]
    assert sorted(chip16.tile_neighbours(15)) == [11, 14]


def test_component_tile_membership(chip16):
    tile_of = chip16.tile_of()
    for t in range(chip16.n_tiles):
        s = chip16.tile_slice(t)
        assert np.all(tile_of[s] == t)


def test_index_of(chip16):
    idx = chip16.index_of("tile5.IntExec")
    assert chip16.components[idx].name == "tile5.IntExec"
    with pytest.raises(KeyError):
        chip16.index_of("tile99.Nothing")


def test_adjacency_is_symmetric_ordered(chip2):
    for adj in chip2.adjacencies:
        assert adj.i < adj.j
        assert adj.shared_edge_mm > 0
        assert adj.center_distance_mm > 0


def test_cross_tile_adjacency_exists(chip2):
    """The die is continuous silicon: components of neighbouring tiles
    that share the tile boundary must be thermally coupled."""
    cross = [
        adj
        for adj in chip2.adjacencies
        if chip2.components[adj.i].tile != chip2.components[adj.j].tile
    ]
    assert cross, "no cross-tile adjacency found"


def test_areas_and_weights_align(chip2):
    assert chip2.areas_mm2().shape == (chip2.n_components,)
    assert chip2.power_weights().shape == (chip2.n_components,)
    assert np.all(chip2.areas_mm2() > 0)
    assert np.all(chip2.power_weights() > 0)


def test_chip_area_consistency(chip16):
    assert chip16.chip_area_mm2 == pytest.approx(
        chip16.areas_mm2().sum(), rel=1e-9
    )
