"""Exporters: JSONL round-trip, run manifests, jsonable coercion."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.exceptions import ObservabilityError
from repro.obs import (
    MANIFEST_SCHEMA,
    Telemetry,
    build_manifest,
    git_sha,
    jsonable,
    read_jsonl,
    telemetry_records,
    write_jsonl,
)


def _populated_session() -> Telemetry:
    tel = Telemetry()
    with tel.span("engine.step"):
        with tel.span("thermal.solve", hist_ms="thermal.solver_ms"):
            pass
    tel.metrics.counter("tec.switch_events").inc(4)
    tel.metrics.gauge("fan.level").set(2.0)
    tel.event("interval", time_s=0.002, peak_temp_c=81.5)
    tel.annotate("workload", "lu/16t")
    return tel


def test_records_start_with_manifest():
    tel = _populated_session()
    records = telemetry_records(tel)
    assert records[0]["type"] == "manifest"
    types = {r["type"] for r in records[1:]}
    assert types == {"span", "span_edge", "counter", "gauge", "histogram",
                     "event"}


def test_jsonl_round_trip_via_file(tmp_path):
    tel = _populated_session()
    path = tmp_path / "run.jsonl"
    text = write_jsonl(tel, path)
    assert path.read_text() == text
    parsed = read_jsonl(path)
    snap = tel.snapshot()
    assert parsed["spans"] == snap["spans"]
    assert parsed["span_edges"] == snap["span_edges"]
    assert parsed["counters"] == snap["counters"]
    assert parsed["gauges"] == snap["gauges"]
    assert parsed["histograms"] == snap["histograms"]
    assert len(parsed["events"]) == 1
    assert parsed["events"][0]["kind"] == "interval"
    assert parsed["events"][0]["peak_temp_c"] == 81.5
    assert parsed["manifest"]["context"]["workload"] == "lu/16t"


def test_jsonl_round_trip_from_raw_text():
    tel = _populated_session()
    parsed = read_jsonl(write_jsonl(tel))
    assert parsed["counters"]["tec.switch_events"] == 4


def test_read_jsonl_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "counter", "name": "x", "value": 1}\nnot json\n')
    with pytest.raises(ObservabilityError, match="line 2"):
        read_jsonl(path)


def test_read_jsonl_rejects_unknown_type(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery"}\n')
    with pytest.raises(ObservabilityError, match="unknown type"):
        read_jsonl(path)


def test_manifest_fields():
    tel = _populated_session()
    manifest = build_manifest(tel, extra={"command": "profile"})
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["repro_version"] == repro.__version__
    assert manifest["python"].count(".") >= 1
    assert manifest["events_recorded"] == 1
    assert manifest["events_dropped"] == 0
    assert manifest["command"] == "profile"
    assert manifest["telemetry"]["spans"]["engine.step"]["count"] == 1
    # The whole manifest must be encodable as-is.
    json.dumps(manifest)


def test_git_sha_degrades_to_none_outside_repo(tmp_path):
    sha = git_sha()  # this checkout
    assert sha is None or len(sha) == 40
    assert git_sha(cwd=tmp_path) is None


def test_round_trip_preserves_histogram_overflow_bucket():
    tel = Telemetry()
    h = tel.metrics.histogram("lat.ms", (1.0, 2.0))
    h.observe(0.5)
    h.observe(1e9)  # lands in the implicit overflow bucket
    parsed = read_jsonl(write_jsonl(tel))
    hist = parsed["histograms"]["lat.ms"]
    assert hist["counts"][-1] == 1
    assert hist["counts"] == tel.snapshot()["histograms"]["lat.ms"]["counts"]
    assert hist["max"] == 1e9


def test_round_trip_reconstructs_span_edges():
    tel = Telemetry()
    with tel.span("run"):
        for _ in range(3):
            with tel.span("step"):
                pass
    parsed = read_jsonl(write_jsonl(tel))
    edges = {
        (e["parent"], e["child"]): e["count"]
        for e in parsed["span_edges"]
    }
    assert edges == {(None, "run"): 1, ("run", "step"): 3}
    # Every span start records exactly one incoming edge, so incoming
    # counts reconstruct occurrence counts exactly.
    for name, stats in parsed["spans"].items():
        incoming = sum(c for (p, ch), c in edges.items() if ch == name)
        assert incoming == stats["count"]


@settings(max_examples=25, deadline=None)
@given(
    fanout=st.lists(
        st.dictionaries(
            st.sampled_from(["task.calls", "task.units", "task.errors"]),
            st.integers(min_value=1, max_value=50),
            max_size=3,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_merged_worker_stream_round_trip_conserves_counters(fanout):
    from repro.obs import capture_worker_telemetry

    parent = Telemetry()
    worker_streams = []
    for i, counters in enumerate(fanout):
        w = Telemetry()
        for name, value in counters.items():
            w.metrics.counter(name).inc(value)
        worker_streams.append(read_jsonl(write_jsonl(w)))
        parent.merge(capture_worker_telemetry(w), label=f"worker={i}")
    merged = read_jsonl(write_jsonl(parent))
    expected: dict[str, int] = {}
    for stream in worker_streams:
        for name, value in stream["counters"].items():
            expected[name] = expected.get(name, 0) + value
    assert merged["counters"] == expected


def test_jsonable_coerces_awkward_values():
    @dataclasses.dataclass
    class Cfg:
        dt: float
        gains: np.ndarray

    value = {
        "cfg": Cfg(dt=2e-3, gains=np.array([1.0, 2.0])),
        "n": np.int64(7),
        "bad": float("nan"),
        "obj": object(),
        "seq": (1, 2),
    }
    out = jsonable(value)
    assert out["cfg"] == {"dt": 2e-3, "gains": [1.0, 2.0]}
    assert out["n"] == 7
    assert out["bad"] == "nan"
    assert out["obj"].startswith("<object object")
    assert out["seq"] == [1, 2]
    json.dumps(out)
