"""Sec. III-E hardware cost model."""

import pytest

from repro.core.hwcost import (
    HardwareCostModel,
    paper_single_multiplier_cost,
)
from repro.exceptions import ConfigurationError


def test_paper_multiplier_count():
    """M x K = 18 x 3 = 54 (Sec. III-E)."""
    assert HardwareCostModel().multipliers == 54


def test_paper_single_multiplier_numbers():
    s = paper_single_multiplier_cost()
    assert s["area_mm2"] == pytest.approx(0.057)
    assert s["area_overhead_pct"] == pytest.approx(0.0285)  # "only 0.03%"
    assert s["power_w"] == pytest.approx(0.0319, abs=1e-3)  # "only 0.03 W"


def test_under_paper_overhead_bound():
    m = HardwareCostModel()
    assert m.area_overhead < 0.017
    assert m.power_overhead < 0.017


def test_area_scales_quadratically_with_width():
    m8 = HardwareCostModel(multiplier_bits=8)
    m16 = HardwareCostModel(multiplier_bits=16)
    assert m16.total_area_mm2 == pytest.approx(4 * m8.total_area_mm2)


def test_multiplications_per_decision():
    m = HardwareCostModel()
    assert m.multiplications_per_decision(16, 100) == 54 * 100


def test_summary_keys():
    keys = set(HardwareCostModel().summary())
    assert {
        "multipliers",
        "area_mm2",
        "area_overhead_pct",
        "power_w",
        "power_overhead_pct",
    } == keys


def test_validation():
    with pytest.raises(ConfigurationError):
        HardwareCostModel(components_per_core=0)
    with pytest.raises(ConfigurationError):
        HardwareCostModel(multiplier_bits=128)
