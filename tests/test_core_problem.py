"""EnergyProblem: Eq. (12)-(14) semantics."""

import numpy as np
import pytest

from repro.core.problem import EnergyProblem
from repro.exceptions import ConfigurationError


def test_epi_eq13():
    assert EnergyProblem.epi(100.0, 20e9) == pytest.approx(5e-9)


def test_epi_zero_ips_is_infinite():
    assert EnergyProblem.epi(100.0, 0.0) == np.inf


def test_epi_negative_power_rejected():
    with pytest.raises(ConfigurationError):
        EnergyProblem.epi(-1.0, 1e9)


def test_constraint_eq14():
    p = EnergyProblem(t_threshold_c=90.0)
    assert p.satisfied(90.0)
    assert p.satisfied(89.9)
    assert not p.satisfied(90.1)


def test_violation_margin_default_half_degree():
    p = EnergyProblem(t_threshold_c=90.0)
    assert not p.violated(90.4)  # inside the counting margin
    assert p.violated(90.6)


def test_headroom():
    p = EnergyProblem(t_threshold_c=90.0)
    assert p.headroom_c(85.0) == pytest.approx(5.0)
    assert p.headroom_c(95.0) == pytest.approx(-5.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        EnergyProblem(t_threshold_c=-5.0)
    with pytest.raises(ConfigurationError):
        EnergyProblem(t_threshold_c=200.0)
    with pytest.raises(ConfigurationError):
        EnergyProblem(t_threshold_c=90.0, violation_margin_c=-1.0)
