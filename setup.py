"""Legacy setuptools shim.

The evaluation environment is offline and lacks the ``wheel`` package,
so ``pip install -e .`` must take the legacy ``setup.py develop`` path;
all metadata lives in ``pyproject.toml``. The version is single-sourced
from ``repro.__version__`` via ``[tool.setuptools.dynamic]`` — never
hard-code a version here or in ``pyproject.toml``.
"""

from setuptools import setup

setup()
