"""Legacy setuptools shim.

The evaluation environment is offline and lacks the ``wheel`` package,
so ``pip install -e .`` must take the legacy ``setup.py develop`` path;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
